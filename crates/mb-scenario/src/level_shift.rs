//! Level shift: one device in a fleet starts reporting a shifted metric.
//!
//! The canonical MacroBase motivating case (Section 1): hundreds of devices
//! report a univariate reading around a common baseline; one device's
//! anomalous readings sit a large, constant shift above it. MAD separates
//! the shifted mass cleanly, and the explainer should recover exactly the
//! guilty device.

use crate::{GeneratedScenario, GroundTruth, Scenario};
use macrobase_core::query::AnalysisConfig;
use macrobase_core::types::Point;
use mb_explain::ExplanationConfig;
use mb_stats::rand_ext::{normal, SplitMix64};

/// Configuration for the level-shift scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelShiftScenario {
    /// Total number of rows.
    pub num_points: usize,
    /// Number of devices in the fleet; healthy rows draw a device uniformly.
    pub num_devices: usize,
    /// Index (mod `num_devices`) of the device that misbehaves.
    pub guilty_device: usize,
    /// Fraction of rows planted as shifted anomalies.
    pub outlier_fraction: f64,
    /// Healthy metric mean.
    pub baseline_mean: f64,
    /// Healthy metric standard deviation.
    pub baseline_std: f64,
    /// Constant added to the guilty device's anomalous readings.
    pub shift: f64,
    /// RNG seed; the same seed always yields the same rows and truth.
    pub seed: u64,
}

impl Default for LevelShiftScenario {
    fn default() -> Self {
        LevelShiftScenario {
            num_points: 6_000,
            num_devices: 40,
            guilty_device: 13,
            outlier_fraction: 0.02,
            baseline_mean: 10.0,
            baseline_std: 2.0,
            shift: 45.0,
            seed: 0x1e7e_15f1,
        }
    }
}

impl LevelShiftScenario {
    fn guilty_value(&self) -> String {
        format!("device_{:02}", self.guilty_device % self.num_devices.max(1))
    }
}

impl Scenario for LevelShiftScenario {
    fn name(&self) -> &'static str {
        "level_shift"
    }

    fn analysis(&self) -> AnalysisConfig {
        AnalysisConfig {
            target_percentile: 1.0 - self.outlier_fraction,
            explanation: ExplanationConfig::new(0.1, 3.0),
            attribute_names: vec!["device".to_string()],
            retain_outlier_rows: true,
            ..AnalysisConfig::default()
        }
    }

    fn generate(&self) -> GeneratedScenario {
        let mut rng = SplitMix64::new(self.seed);
        let n = self.num_points;
        let devices = self.num_devices.max(1);
        let planted = ((n as f64) * self.outlier_fraction).round() as usize;
        let guilty = self.guilty_value();

        let mut points = Vec::with_capacity(n);
        let mut outlier_rows = Vec::with_capacity(planted);
        // Selection sampling (Knuth Algorithm S): exactly `planted` anomaly
        // rows, uniformly spread over the stream.
        let mut needed = planted;
        for row in 0..n {
            let remaining = n - row;
            if needed > 0 && rng.next_below(remaining) < needed {
                needed -= 1;
                outlier_rows.push(row);
                let value = normal(&mut rng, self.baseline_mean + self.shift, self.baseline_std);
                points.push(Point::simple(value, guilty.clone()));
            } else {
                let device = format!("device_{:02}", rng.next_below(devices));
                let value = normal(&mut rng, self.baseline_mean, self.baseline_std);
                points.push(Point::simple(value, device));
            }
        }

        GeneratedScenario {
            points,
            truth: GroundTruth {
                outlier_rows,
                guilty_attributes: vec![vec![format!("device={guilty}")]],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plants_exact_mass_on_the_guilty_device() {
        let scenario = LevelShiftScenario::default();
        let generated = scenario.generate();
        assert_eq!(generated.points.len(), 6_000);
        assert_eq!(generated.truth.outlier_rows.len(), 120);
        for &row in &generated.truth.outlier_rows {
            let point = &generated.points[row];
            assert_eq!(point.attributes[0], "device_13");
            assert!(point.metrics[0] > 30.0, "shifted value expected");
        }
        assert_eq!(
            generated.truth.guilty_attributes,
            vec![vec!["device=device_13".to_string()]]
        );
    }

    #[test]
    fn healthy_rows_stay_near_baseline() {
        let scenario = LevelShiftScenario::default();
        let generated = scenario.generate();
        let planted: std::collections::HashSet<usize> =
            generated.truth.outlier_rows.iter().copied().collect();
        for (row, point) in generated.points.iter().enumerate() {
            if !planted.contains(&row) {
                assert!(point.metrics[0] < 25.0, "row {row} unexpectedly shifted");
            }
        }
    }
}
