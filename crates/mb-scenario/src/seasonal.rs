//! Seasonal drift: spikes on top of a slowly oscillating baseline.
//!
//! Telemetry baselines are rarely flat — load breathes with a daily cycle.
//! Here every sensor tracks a shared sinusoidal baseline, and one sensor
//! occasionally spikes far above it. A robust global model must not mistake
//! the seasonal swing for anomalies (the oscillation stays well inside the
//! spike magnitude), and the adaptive streaming backend gets a workload
//! whose inlier distribution genuinely moves under it (Section 4's ADR
//! motivation).

use crate::{GeneratedScenario, GroundTruth, Scenario};
use macrobase_core::query::AnalysisConfig;
use macrobase_core::types::Point;
use mb_explain::ExplanationConfig;
use mb_stats::rand_ext::{normal, SplitMix64};

/// Configuration for the seasonal-drift scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalDriftScenario {
    /// Total number of rows (time-ordered).
    pub num_points: usize,
    /// Number of sensors; healthy rows draw a sensor uniformly.
    pub num_sensors: usize,
    /// Index (mod `num_sensors`) of the sensor that spikes.
    pub guilty_sensor: usize,
    /// Rows per full seasonal cycle.
    pub period: usize,
    /// Level around which the baseline oscillates.
    pub base_level: f64,
    /// Peak amplitude of the seasonal oscillation.
    pub amplitude: f64,
    /// Standard deviation of per-row noise.
    pub noise_std: f64,
    /// Fraction of rows planted as spikes.
    pub outlier_fraction: f64,
    /// Height of a planted spike above the seasonal baseline.
    pub spike: f64,
    /// RNG seed; the same seed always yields the same rows and truth.
    pub seed: u64,
}

impl Default for SeasonalDriftScenario {
    fn default() -> Self {
        SeasonalDriftScenario {
            num_points: 6_000,
            num_sensors: 30,
            guilty_sensor: 7,
            period: 1_500,
            base_level: 20.0,
            amplitude: 4.0,
            noise_std: 1.0,
            outlier_fraction: 0.02,
            spike: 35.0,
            seed: 0x5ea_50a1,
        }
    }
}

impl SeasonalDriftScenario {
    fn guilty_value(&self) -> String {
        format!("sensor_{:02}", self.guilty_sensor % self.num_sensors.max(1))
    }
}

impl Scenario for SeasonalDriftScenario {
    fn name(&self) -> &'static str {
        "seasonal_drift"
    }

    fn analysis(&self) -> AnalysisConfig {
        AnalysisConfig {
            target_percentile: 1.0 - self.outlier_fraction,
            explanation: ExplanationConfig::new(0.1, 3.0),
            attribute_names: vec!["sensor".to_string()],
            retain_outlier_rows: true,
            ..AnalysisConfig::default()
        }
    }

    fn generate(&self) -> GeneratedScenario {
        let mut rng = SplitMix64::new(self.seed);
        let n = self.num_points;
        let sensors = self.num_sensors.max(1);
        let period = self.period.max(1) as f64;
        let planted = ((n as f64) * self.outlier_fraction).round() as usize;
        let guilty = self.guilty_value();

        let mut points = Vec::with_capacity(n);
        let mut outlier_rows = Vec::with_capacity(planted);
        let mut needed = planted;
        for row in 0..n {
            let phase = 2.0 * std::f64::consts::PI * row as f64 / period;
            let baseline = self.base_level + self.amplitude * phase.sin();
            let remaining = n - row;
            if needed > 0 && rng.next_below(remaining) < needed {
                needed -= 1;
                outlier_rows.push(row);
                let value = normal(&mut rng, baseline + self.spike, self.noise_std);
                points.push(Point::simple(value, guilty.clone()));
            } else {
                let sensor = format!("sensor_{:02}", rng.next_below(sensors));
                let value = normal(&mut rng, baseline, self.noise_std);
                points.push(Point::simple(value, sensor));
            }
        }

        GeneratedScenario {
            points,
            truth: GroundTruth {
                outlier_rows,
                guilty_attributes: vec![vec![format!("sensor={guilty}")]],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spikes_clear_the_seasonal_swing() {
        let scenario = SeasonalDriftScenario::default();
        let generated = scenario.generate();
        assert_eq!(generated.truth.outlier_rows.len(), 120);
        let planted: std::collections::HashSet<usize> =
            generated.truth.outlier_rows.iter().copied().collect();
        let healthy_max = generated
            .points
            .iter()
            .enumerate()
            .filter(|(row, _)| !planted.contains(row))
            .map(|(_, p)| p.metrics[0])
            .fold(f64::MIN, f64::max);
        let spike_min = generated
            .truth
            .outlier_rows
            .iter()
            .map(|&row| generated.points[row].metrics[0])
            .fold(f64::MAX, f64::min);
        assert!(
            spike_min > healthy_max + 5.0,
            "spikes ({spike_min:.1}) must clear the seasonal ceiling ({healthy_max:.1})"
        );
        for &row in &generated.truth.outlier_rows {
            assert_eq!(generated.points[row].attributes[0], "sensor_07");
        }
    }
}
