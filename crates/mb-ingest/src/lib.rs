//! Ingestion and synthetic workload generation for MacroBase-RS.
//!
//! MacroBase ingests external data sources into streams of points — pairs of
//! real-valued metrics and categorical attributes (Section 3.2, stage 1).
//! The paper's evaluation additionally relies on several synthetic and
//! real-world workloads that are not redistributable, so this crate provides:
//!
//! * [`csv`] — a small CSV reader that maps columns to metrics/attributes.
//! * [`synthetic`] — the controlled workloads of the evaluation: the device
//!   workload of Figure 4, the contamination data of Figure 3, the
//!   time-varying stream of Figure 5, and Zipfian attribute streams for the
//!   heavy-hitter comparison of Figure 6.
//! * [`datasets`] — simulated stand-ins for the six large-scale datasets of
//!   Table 2 (CMT, Telecom, Liquor, Campaign, Accidents, Disburse) matching
//!   their reported row counts, metric/attribute arities, and attribute
//!   cardinalities (scaled by a configurable factor).
//! * [`dbsherlock`] — a generator for the DBSherlock-style OLTP anomaly
//!   workload of Table 4 (11-server clusters, 200+ correlated performance
//!   counters, nine anomaly types).
//!
//! ## Example
//!
//! Generate the paper's device workload (scaled down) with ground-truth
//! anomaly labels:
//!
//! ```
//! use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};
//!
//! let workload = device_workload(&DeviceWorkloadConfig {
//!     num_points: 1_000,
//!     num_devices: 100,
//!     ..DeviceWorkloadConfig::default()
//! });
//! assert_eq!(workload.records.len(), 1_000);
//! assert!(workload.records.iter().any(|r| r.is_anomalous));
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod datasets;
pub mod dbsherlock;
pub mod synthetic;

/// One ingested record: the raw form of a MacroBase point.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Real-valued measurements (e.g. trip time, battery drain).
    pub metrics: Vec<f64>,
    /// Categorical metadata (e.g. user ID, device ID), one value per
    /// attribute column.
    pub attributes: Vec<String>,
}

impl Record {
    /// Create a record.
    pub fn new(metrics: Vec<f64>, attributes: Vec<String>) -> Self {
        Record {
            metrics,
            attributes,
        }
    }
}

/// A labeled record used by accuracy experiments (the generator knows which
/// points were drawn from the anomalous regime).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledRecord {
    /// The record itself.
    pub record: Record,
    /// Whether the generator intended this point to be anomalous.
    pub is_anomalous: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_construction() {
        let r = Record::new(vec![1.0, 2.0], vec!["a".to_string()]);
        assert_eq!(r.metrics.len(), 2);
        assert_eq!(r.attributes.len(), 1);
    }
}
