//! Minimal CSV ingestion.
//!
//! MacroBase's reference implementation ingests from JDBC/CSV sources; this
//! module provides the CSV path. The reader handles the common cases the
//! evaluation data needs — headers, configurable delimiter, quoted fields —
//! and maps named columns onto metrics and attributes, skipping rows whose
//! metric cells fail to parse (with a count of how many were skipped). In
//! [strict mode](CsvQuery::strict) a malformed row is instead an error that
//! carries its line number and the offending column.

use crate::Record;
use std::io::BufRead;

/// Errors produced by CSV ingestion.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input had no header row.
    MissingHeader,
    /// A requested column name was not present in the header.
    UnknownColumn(String),
    /// A data row could not be parsed ([strict mode](CsvQuery::strict) only;
    /// by default malformed rows are skipped and counted).
    MalformedRow {
        /// 1-based line number in the input (the header is line 1).
        line: usize,
        /// Name of the column that failed.
        column: String,
        /// The offending cell text, or `None` when the field was missing
        /// from the row entirely.
        value: Option<String>,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            CsvError::MalformedRow {
                line,
                column,
                value: Some(value),
            } => write!(
                f,
                "line {line}: metric column {column:?} has unparseable value {value:?}"
            ),
            CsvError::MalformedRow {
                line,
                column,
                value: None,
            } => write!(f, "line {line}: row is missing column {column:?}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Configuration of a CSV ingestion query: which columns are metrics and
/// which are attributes.
#[derive(Debug, Clone)]
pub struct CsvQuery {
    /// Names of the metric columns (parsed as `f64`).
    pub metric_columns: Vec<String>,
    /// Names of the attribute columns (kept as strings).
    pub attribute_columns: Vec<String>,
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Fail on the first malformed data row instead of skipping it
    /// (default `false`). The resulting [`CsvError::MalformedRow`] carries
    /// the 1-based line number and the column that failed.
    pub strict: bool,
}

impl CsvQuery {
    /// Create a query over the given metric and attribute column names.
    pub fn new(metric_columns: Vec<String>, attribute_columns: Vec<String>) -> Self {
        CsvQuery {
            metric_columns,
            attribute_columns,
            delimiter: ',',
            strict: false,
        }
    }

    /// Turn malformed data rows into positioned errors instead of skips.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }
}

/// Result of ingesting a CSV source.
#[derive(Debug)]
pub struct CsvIngestResult {
    /// Successfully parsed records.
    pub records: Vec<Record>,
    /// Number of data rows skipped because a metric failed to parse or a
    /// column was missing.
    pub skipped_rows: usize,
}

/// Split one CSV line honoring double-quoted fields, writing into `fields`
/// and reusing each slot's allocation across calls (the hot path splits
/// millions of lines; per-line field vectors dominated its allocation
/// profile). Returns the number of fields written; slots past that count
/// hold stale text from earlier lines and must not be read.
fn split_line_into(line: &str, delimiter: char, fields: &mut Vec<String>) -> usize {
    let mut used = 0usize;
    if fields.is_empty() {
        fields.push(String::new());
    }
    fields[0].clear();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    fields[used].push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                fields[used].push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            used += 1;
            if used == fields.len() {
                fields.push(String::new());
            } else {
                fields[used].clear();
            }
        } else {
            fields[used].push(c);
        }
    }
    used + 1
}

/// Split one CSV line honoring double-quoted fields (owned result; the
/// header path, which runs once per file).
fn split_line(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let used = split_line_into(line, delimiter, &mut fields);
    fields.truncate(used);
    fields
}

/// Strip the trailing newline the way `BufRead::lines` does: one `\n`, plus
/// a preceding `\r` if present — nothing else.
fn strip_line_ending(line: &str) -> &str {
    let line = line.strip_suffix('\n').unwrap_or(line);
    line.strip_suffix('\r').unwrap_or(line)
}

/// A streaming CSV reader: parses the header eagerly (so unknown columns
/// fail at construction), then yields [`Record`]s one at a time without
/// materializing the file. [`ingest_csv`] is a thin collect over it; batch
/// ingestion into a running query goes through
/// `macrobase_core::operator::CsvIngestor`.
pub struct CsvReader<R: BufRead> {
    reader: R,
    /// Reused line buffer: one `read_line` target for the whole file instead
    /// of a fresh `String` per record.
    line: String,
    /// Reused field buffer for [`split_line_into`]; slot allocations are
    /// recycled across records.
    fields: Vec<String>,
    delimiter: char,
    strict: bool,
    metric_idx: Vec<usize>,
    attribute_idx: Vec<usize>,
    /// Column names parallel to the index vectors, kept for error context
    /// (read only when a row is malformed, never on the hot path).
    metric_names: Vec<String>,
    attribute_names: Vec<String>,
    skipped_rows: usize,
    /// 1-based line number of the most recently read line (the header is
    /// line 1).
    line_number: usize,
}

impl<R: BufRead> CsvReader<R> {
    /// Read and validate the header, resolving `query`'s column names to
    /// field indices.
    pub fn new(mut reader: R, query: &CsvQuery) -> Result<Self, CsvError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(CsvError::MissingHeader);
        }
        let header: Vec<String> = split_line(strip_line_ending(&line), query.delimiter)
            .into_iter()
            .map(|h| h.trim().to_string())
            .collect();
        let find = |name: &String| -> Result<usize, CsvError> {
            header
                .iter()
                .position(|h| h == name)
                .ok_or_else(|| CsvError::UnknownColumn(name.clone()))
        };
        let metric_idx: Vec<usize> = query
            .metric_columns
            .iter()
            .map(find)
            .collect::<Result<_, _>>()?;
        let attribute_idx: Vec<usize> = query
            .attribute_columns
            .iter()
            .map(find)
            .collect::<Result<_, _>>()?;
        Ok(CsvReader {
            reader,
            line,
            fields: Vec::new(),
            delimiter: query.delimiter,
            strict: query.strict,
            metric_idx,
            attribute_idx,
            metric_names: query.metric_columns.clone(),
            attribute_names: query.attribute_columns.clone(),
            skipped_rows: 0,
            line_number: 1,
        })
    }

    /// Number of data rows skipped so far because a metric failed to parse
    /// or a column was missing.
    pub fn skipped_rows(&self) -> usize {
        self.skipped_rows
    }

    /// 1-based line number of the most recently read line (the header is
    /// line 1, the first data row line 2).
    pub fn line_number(&self) -> usize {
        self.line_number
    }

    /// The next successfully parsed record; `Ok(None)` at end of input.
    /// Unparseable rows are skipped (and counted) — or, in
    /// [strict mode](CsvQuery::strict), returned as
    /// [`CsvError::MalformedRow`] with line and column context. I/O
    /// failures are always errors.
    pub fn next_record(&mut self) -> Result<Option<Record>, CsvError> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            self.line_number += 1;
            let line = strip_line_ending(&self.line);
            if line.trim().is_empty() {
                continue;
            }
            let used = split_line_into(line, self.delimiter, &mut self.fields);
            let fields = &self.fields[..used];
            // On failure: which column (by position in the query's list)
            // and the offending cell, if the field was present at all.
            let mut bad: Option<(usize, bool, Option<String>)> = None;
            let mut metrics = Vec::with_capacity(self.metric_idx.len());
            for (slot, &idx) in self.metric_idx.iter().enumerate() {
                match fields.get(idx) {
                    Some(cell) => match cell.trim().parse::<f64>() {
                        Ok(v) if v.is_finite() => metrics.push(v),
                        _ => {
                            bad = Some((slot, true, Some(cell.trim().to_string())));
                            break;
                        }
                    },
                    None => {
                        bad = Some((slot, true, None));
                        break;
                    }
                }
            }
            if bad.is_none() {
                let mut attributes = Vec::with_capacity(self.attribute_idx.len());
                for (slot, &idx) in self.attribute_idx.iter().enumerate() {
                    match fields.get(idx) {
                        Some(value) => attributes.push(value.trim().to_string()),
                        None => {
                            bad = Some((slot, false, None));
                            break;
                        }
                    }
                }
                if bad.is_none() {
                    return Ok(Some(Record::new(metrics, attributes)));
                }
            }
            let (slot, is_metric, value) = bad.expect("checked above");
            if self.strict {
                let names = if is_metric {
                    &self.metric_names
                } else {
                    &self.attribute_names
                };
                return Err(CsvError::MalformedRow {
                    line: self.line_number,
                    column: names[slot].clone(),
                    value,
                });
            }
            self.skipped_rows += 1;
        }
    }
}

/// Ingest CSV data from any buffered reader according to `query`,
/// materializing every record.
pub fn ingest_csv<R: BufRead>(reader: R, query: &CsvQuery) -> Result<CsvIngestResult, CsvError> {
    let mut reader = CsvReader::new(reader, query)?;
    let mut records = Vec::new();
    while let Some(record) = reader.next_record()? {
        records.push(record);
    }
    Ok(CsvIngestResult {
        records,
        skipped_rows: reader.skipped_rows(),
    })
}

/// Ingest a CSV string (convenience for tests and examples).
pub fn ingest_csv_str(data: &str, query: &CsvQuery) -> Result<CsvIngestResult, CsvError> {
    ingest_csv(std::io::Cursor::new(data), query)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
device_id,app_version,power_drain,trip_time
B264,2.26.3,85.5,1200
B101,2.26.3,12.0,900
B264,2.25.0,13.5,1100
";

    fn query() -> CsvQuery {
        CsvQuery::new(
            vec!["power_drain".to_string()],
            vec!["device_id".to_string(), "app_version".to_string()],
        )
    }

    #[test]
    fn parses_basic_file() {
        let result = ingest_csv_str(SAMPLE, &query()).unwrap();
        assert_eq!(result.records.len(), 3);
        assert_eq!(result.skipped_rows, 0);
        assert_eq!(result.records[0].metrics, vec![85.5]);
        assert_eq!(
            result.records[0].attributes,
            vec!["B264".to_string(), "2.26.3".to_string()]
        );
    }

    #[test]
    fn unknown_column_is_an_error() {
        let bad = CsvQuery::new(vec!["nonexistent".to_string()], vec![]);
        assert!(matches!(
            ingest_csv_str(SAMPLE, &bad),
            Err(CsvError::UnknownColumn(_))
        ));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(
            ingest_csv_str("", &query()),
            Err(CsvError::MissingHeader)
        ));
    }

    #[test]
    fn unparseable_metrics_are_skipped_and_counted() {
        let data = "\
device_id,app_version,power_drain,trip_time
B264,2.26.3,not_a_number,1200
B101,2.26.3,12.0,900
B102,2.26.3,NaN,900
";
        let result = ingest_csv_str(data, &query()).unwrap();
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.skipped_rows, 2);
    }

    #[test]
    fn strict_mode_reports_line_and_column_of_a_malformed_row() {
        // The bad row is mid-file: line 1 is the header, line 2 parses,
        // line 3 is malformed, line 4 would parse.
        let data = "\
device_id,app_version,power_drain,trip_time
B264,2.26.3,85.5,1200
B101,2.26.3,not_a_number,900
B264,2.25.0,13.5,1100
";
        let mut reader = CsvReader::new(std::io::Cursor::new(data), &query().strict()).unwrap();
        assert!(reader.next_record().unwrap().is_some());
        let err = reader.next_record().unwrap_err();
        match &err {
            CsvError::MalformedRow {
                line,
                column,
                value,
            } => {
                assert_eq!(*line, 3);
                assert_eq!(column, "power_drain");
                assert_eq!(value.as_deref(), Some("not_a_number"));
            }
            other => panic!("expected MalformedRow, got {other:?}"),
        }
        let message = err.to_string();
        assert!(message.contains("line 3"), "no position in: {message}");
        assert!(message.contains("power_drain"), "no column in: {message}");
    }

    #[test]
    fn strict_mode_reports_a_row_too_short_for_its_columns() {
        let data = "\
device_id,app_version,power_drain,trip_time
B264,2.26.3
";
        let mut reader = CsvReader::new(std::io::Cursor::new(data), &query().strict()).unwrap();
        let err = reader.next_record().unwrap_err();
        assert!(matches!(
            err,
            CsvError::MalformedRow {
                line: 2,
                value: None,
                ..
            }
        ));
        assert!(err.to_string().contains("missing column"));
    }

    #[test]
    fn default_mode_still_skips_the_rows_strict_mode_rejects() {
        let data = "\
device_id,app_version,power_drain,trip_time
B264,2.26.3,85.5,1200
B101,2.26.3,not_a_number,900
B264,2.25.0
";
        let result = ingest_csv_str(data, &query()).unwrap();
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.skipped_rows, 2);
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        let data = "\
name,amount
\"Smith, John\",100.5
\"He said \"\"hi\"\"\",3.0
";
        let q = CsvQuery::new(vec!["amount".to_string()], vec!["name".to_string()]);
        let result = ingest_csv_str(data, &q).unwrap();
        assert_eq!(result.records.len(), 2);
        assert_eq!(result.records[0].attributes[0], "Smith, John");
        assert_eq!(result.records[1].attributes[0], "He said \"hi\"");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let data = "a,b\n1.0,x\n\n2.0,y\n";
        let q = CsvQuery::new(vec!["a".to_string()], vec!["b".to_string()]);
        let result = ingest_csv_str(data, &q).unwrap();
        assert_eq!(result.records.len(), 2);
    }

    #[test]
    fn streaming_reader_yields_records_lazily() {
        let mut reader = CsvReader::new(std::io::Cursor::new(SAMPLE), &query()).unwrap();
        let first = reader.next_record().unwrap().unwrap();
        assert_eq!(first.metrics, vec![85.5]);
        assert_eq!(first.attributes[0], "B264");
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().unwrap().is_some());
        assert!(reader.next_record().unwrap().is_none());
        assert_eq!(reader.skipped_rows(), 0);
    }

    #[test]
    fn custom_delimiter() {
        let data = "a|b\n1.5|x\n";
        let mut q = CsvQuery::new(vec!["a".to_string()], vec!["b".to_string()]);
        q.delimiter = '|';
        let result = ingest_csv_str(data, &q).unwrap();
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].metrics, vec![1.5]);
    }
}
