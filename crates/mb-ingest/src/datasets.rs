//! Simulated stand-ins for the six large-scale evaluation datasets of
//! Table 2 / Appendix D.
//!
//! The originals (CMT production telematics, Iowa liquor sales, Milan telecom
//! activity, US campaign expenditures, UK road accidents, candidate
//! disbursements) cannot be redistributed, so each is replaced by a synthetic
//! generator matching its **shape**: number of points, number of metrics and
//! attributes for the paper's "simple" and "complex" queries, and the
//! approximate cardinality of each attribute column. Each dataset plants a
//! small population of systemically anomalous points tied to specific
//! attribute values so that explanation quality is measurable. Row counts are
//! scaled by [`DatasetScale`] so experiments stay laptop-sized; the benches
//! report the scale they used.

use crate::Record;
use mb_stats::rand_ext::{normal, SplitMix64, Zipf};

/// Scale factor applied to the paper's row counts.
#[derive(Debug, Clone, Copy)]
pub struct DatasetScale {
    /// Divide the paper's row count by this factor (1 = full size).
    pub divisor: usize,
}

impl Default for DatasetScale {
    fn default() -> Self {
        // 100x smaller than the paper keeps every dataset under ~100K rows.
        DatasetScale { divisor: 100 }
    }
}

/// Identifiers for the six Table 2 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Iowa liquor sales ("Liquor", LS/LC).
    Liquor,
    /// Milan telecom activity ("Telecom", TS/TC).
    Telecom,
    /// US presidential campaign expenditures ("Campaign", ES/EC).
    Campaign,
    /// UK road accidents ("Accidents", AS/AC).
    Accidents,
    /// US House/Senate disbursements ("Disburse", FS/FC).
    Disburse,
    /// CMT telematics ("CMT", MS/MC).
    Cmt,
}

impl DatasetId {
    /// All six datasets in the order Table 2 lists them.
    pub fn all() -> [DatasetId; 6] {
        [
            DatasetId::Liquor,
            DatasetId::Telecom,
            DatasetId::Campaign,
            DatasetId::Accidents,
            DatasetId::Disburse,
            DatasetId::Cmt,
        ]
    }

    /// Short name used in tables (matches the paper).
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Liquor => "Liquor",
            DatasetId::Telecom => "Telecom",
            DatasetId::Campaign => "Campaign",
            DatasetId::Accidents => "Accidents",
            DatasetId::Disburse => "Disburse",
            DatasetId::Cmt => "CMT",
        }
    }

    /// Query-name prefix (L, T, E, A, F, M as in Table 2).
    pub fn query_prefix(&self) -> &'static str {
        match self {
            DatasetId::Liquor => "L",
            DatasetId::Telecom => "T",
            DatasetId::Campaign => "E",
            DatasetId::Accidents => "A",
            DatasetId::Disburse => "F",
            DatasetId::Cmt => "M",
        }
    }
}

/// Static description of a dataset's shape (matching Table 2 / Appendix D).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset this describes.
    pub id: DatasetId,
    /// Paper row count.
    pub paper_points: usize,
    /// Number of metrics in the complex query (the simple query always uses 1).
    pub complex_metrics: usize,
    /// Number of attributes in the complex query (the simple query always uses 1).
    pub complex_attributes: usize,
    /// Cardinality of each attribute column (first entry is the column used
    /// by the simple query).
    pub attribute_cardinalities: Vec<usize>,
}

/// Shape of each dataset, following Table 2's metric/attribute counts and
/// Appendix D's description of attribute cardinalities (e.g. Accidents has
/// only 9 weather conditions; Disburse has ~138K distinct recipients).
pub fn dataset_spec(id: DatasetId) -> DatasetSpec {
    match id {
        DatasetId::Liquor => DatasetSpec {
            id,
            paper_points: 3_050_000,
            complex_metrics: 2,
            complex_attributes: 4,
            attribute_cardinalities: vec![1_400, 120, 400, 3_000],
        },
        DatasetId::Telecom => DatasetSpec {
            id,
            paper_points: 10_000_000,
            complex_metrics: 5,
            complex_attributes: 2,
            attribute_cardinalities: vec![10_000, 65],
        },
        DatasetId::Campaign => DatasetSpec {
            id,
            paper_points: 10_000_000,
            complex_metrics: 1,
            complex_attributes: 5,
            attribute_cardinalities: vec![5_000, 900, 50, 12, 300],
        },
        DatasetId::Accidents => DatasetSpec {
            id,
            paper_points: 430_000,
            complex_metrics: 3,
            complex_attributes: 3,
            attribute_cardinalities: vec![9, 7, 50],
        },
        DatasetId::Disburse => DatasetSpec {
            id,
            paper_points: 3_480_000,
            complex_metrics: 1,
            complex_attributes: 6,
            attribute_cardinalities: vec![138_338 / 50, 2_000, 50, 12, 400, 30],
        },
        DatasetId::Cmt => DatasetSpec {
            id,
            paper_points: 10_000_000,
            complex_metrics: 7,
            complex_attributes: 6,
            attribute_cardinalities: vec![24_000 / 10, 500, 60, 40, 12, 200],
        },
    }
}

/// A generated dataset: records plus the attribute values that were planted
/// as systemically anomalous (for result-quality checks).
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The dataset's shape description.
    pub spec: DatasetSpec,
    /// Generated rows: `complex_metrics` metrics and `complex_attributes`
    /// attribute columns each (simple queries use column 0 of each).
    pub records: Vec<Record>,
    /// The attribute values (column, value) planted to co-occur with
    /// anomalous metric readings.
    pub planted_attributes: Vec<(usize, String)>,
}

/// Generate a simulated dataset.
///
/// Roughly 1% of rows are anomalous: their metrics are shifted several
/// standard deviations and their first two attribute columns are drawn from a
/// small set of planted values (mimicking the "device type × app version"
/// style of systemic problem the paper describes).
pub fn generate_dataset(id: DatasetId, scale: DatasetScale, seed: u64) -> GeneratedDataset {
    let spec = dataset_spec(id);
    let num_points = (spec.paper_points / scale.divisor.max(1)).max(1_000);
    let mut rng = SplitMix64::new(seed ^ (id as u64).wrapping_mul(0x9E37_79B9));

    // Zipf-distributed attribute values per column (production attribute
    // frequencies are heavily skewed).
    let zipfs: Vec<Zipf> = spec
        .attribute_cardinalities
        .iter()
        .map(|&c| Zipf::new(c.max(2), 1.1))
        .collect();

    // Planted anomalous values: an uncommon value in each of the first two
    // attribute columns (or just the first if there is only one).
    let mut planted_attributes = vec![(0usize, "planted_0".to_string())];
    if spec.complex_attributes > 1 {
        planted_attributes.push((1usize, "planted_1".to_string()));
    }

    let mut records = Vec::with_capacity(num_points);
    for _ in 0..num_points {
        let is_anomalous = rng.next_f64() < 0.01;
        let mut metrics = Vec::with_capacity(spec.complex_metrics);
        for m in 0..spec.complex_metrics {
            let base = 50.0 + 10.0 * m as f64;
            let value = if is_anomalous {
                normal(&mut rng, base + 8.0 * 10.0, 10.0)
            } else {
                normal(&mut rng, base, 10.0)
            };
            metrics.push(value);
        }
        let mut attributes = Vec::with_capacity(spec.complex_attributes);
        for (col, zipf) in zipfs.iter().enumerate().take(spec.complex_attributes) {
            let planted_here = planted_attributes.iter().any(|(c, _)| *c == col);
            // 80% of anomalous rows carry the planted value in the planted
            // columns; everything else draws from the Zipf background.
            if is_anomalous && planted_here && rng.next_f64() < 0.8 {
                attributes.push(format!("planted_{col}"));
            } else {
                attributes.push(format!("a{col}_v{}", zipf.sample(&mut rng)));
            }
        }
        records.push(Record::new(metrics, attributes));
    }
    GeneratedDataset {
        spec,
        records,
        planted_attributes,
    }
}

/// Project a generated dataset down to the paper's "simple" query shape
/// (single metric, single attribute).
pub fn simple_query_view(dataset: &GeneratedDataset) -> Vec<Record> {
    dataset
        .records
        .iter()
        .map(|r| {
            Record::new(
                vec![r.metrics[0]],
                vec![r.attributes.first().cloned().unwrap_or_default()],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2_arities() {
        let cmt = dataset_spec(DatasetId::Cmt);
        assert_eq!(cmt.complex_metrics, 7);
        assert_eq!(cmt.complex_attributes, 6);
        let telecom = dataset_spec(DatasetId::Telecom);
        assert_eq!(telecom.complex_metrics, 5);
        assert_eq!(telecom.complex_attributes, 2);
        let accidents = dataset_spec(DatasetId::Accidents);
        assert_eq!(accidents.attribute_cardinalities[0], 9);
        for id in DatasetId::all() {
            let spec = dataset_spec(id);
            assert_eq!(spec.attribute_cardinalities.len(), spec.complex_attributes);
        }
    }

    #[test]
    fn generation_respects_shape_and_scale() {
        let dataset = generate_dataset(
            DatasetId::Accidents,
            DatasetScale { divisor: 100 },
            1,
        );
        assert_eq!(dataset.records.len(), 4_300);
        for r in &dataset.records {
            assert_eq!(r.metrics.len(), 3);
            assert_eq!(r.attributes.len(), 3);
        }
    }

    #[test]
    fn planted_values_correlate_with_anomalous_metrics() {
        let dataset = generate_dataset(DatasetId::Liquor, DatasetScale { divisor: 100 }, 2);
        let planted: Vec<&Record> = dataset
            .records
            .iter()
            .filter(|r| r.attributes[0] == "planted_0")
            .collect();
        let background: Vec<&Record> = dataset
            .records
            .iter()
            .filter(|r| r.attributes[0] != "planted_0")
            .collect();
        assert!(!planted.is_empty());
        let mean = |rs: &[&Record]| {
            rs.iter().map(|r| r.metrics[0]).sum::<f64>() / rs.len() as f64
        };
        assert!(mean(&planted) > mean(&background) + 40.0);
        // Planted rows are rare (~1% of the data).
        assert!(planted.len() < dataset.records.len() / 20);
    }

    #[test]
    fn simple_view_has_one_metric_and_attribute() {
        let dataset = generate_dataset(DatasetId::Campaign, DatasetScale { divisor: 500 }, 3);
        let simple = simple_query_view(&dataset);
        assert_eq!(simple.len(), dataset.records.len());
        assert!(simple.iter().all(|r| r.metrics.len() == 1 && r.attributes.len() == 1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_dataset(DatasetId::Telecom, DatasetScale { divisor: 1000 }, 9);
        let b = generate_dataset(DatasetId::Telecom, DatasetScale { divisor: 1000 }, 9);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn query_prefixes_are_unique() {
        use std::collections::HashSet;
        let prefixes: HashSet<&str> = DatasetId::all().iter().map(|d| d.query_prefix()).collect();
        assert_eq!(prefixes.len(), 6);
    }
}
