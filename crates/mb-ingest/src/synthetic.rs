//! Synthetic workload generators used by the evaluation (Section 6.1 and
//! Appendix A/D).

use crate::{LabeledRecord, Record};
use mb_stats::rand_ext::{normal, SplitMix64, Zipf};

/// Configuration of the device workload used for the precision/recall study
/// of Figure 4 (and the accuracy claims of Section 6.1).
///
/// The dataset contains `num_points` readings from `num_devices` devices.
/// A fraction of devices are designated *outlying*: their readings are drawn
/// from the outlier distribution `N(70, 10)`, while all other devices draw
/// from the inlier distribution `N(10, 10)`. Two kinds of noise can be
/// injected: **label noise** (readings swapped between inlying and outlying
/// devices) and **measurement noise** (readings replaced with uniform values
/// over `[0, 80]`).
#[derive(Debug, Clone, Copy)]
pub struct DeviceWorkloadConfig {
    /// Total number of points (paper: 1M).
    pub num_points: usize,
    /// Total number of devices (paper: 6400, 12800, 25600).
    pub num_devices: usize,
    /// Fraction of devices that misbehave (draw from the outlier
    /// distribution).
    pub outlying_device_fraction: f64,
    /// Fraction of readings whose device assignment is swapped between the
    /// inlier and outlier populations ("label noise").
    pub label_noise: f64,
    /// Fraction of readings replaced by uniform noise over `[0, 80]`
    /// ("measurement noise").
    pub measurement_noise: f64,
    /// Mean/std of the inlier metric distribution (paper: N(10, 10)).
    pub inlier_mean: f64,
    /// Standard deviation of the inlier distribution.
    pub inlier_std: f64,
    /// Mean of the outlier metric distribution (paper: N(70, 10)).
    pub outlier_mean: f64,
    /// Standard deviation of the outlier distribution.
    pub outlier_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeviceWorkloadConfig {
    fn default() -> Self {
        DeviceWorkloadConfig {
            num_points: 100_000,
            num_devices: 6_400,
            outlying_device_fraction: 0.01,
            label_noise: 0.0,
            measurement_noise: 0.0,
            inlier_mean: 10.0,
            inlier_std: 10.0,
            outlier_mean: 70.0,
            outlier_std: 10.0,
            seed: 42,
        }
    }
}

/// The generated device workload plus ground truth for accuracy scoring.
#[derive(Debug, Clone)]
pub struct DeviceWorkload {
    /// The generated points: one metric (the reading) and one attribute
    /// (`device_id`).
    pub records: Vec<LabeledRecord>,
    /// Device ids designated as outlying (ground truth for Figure 4's
    /// F1-score computation).
    pub outlying_devices: Vec<String>,
}

/// Generate the Figure 4 device workload.
pub fn device_workload(config: &DeviceWorkloadConfig) -> DeviceWorkload {
    assert!(config.num_devices > 0, "need at least one device");
    let mut rng = SplitMix64::new(config.seed);
    let num_outlying = ((config.num_devices as f64 * config.outlying_device_fraction).round()
        as usize)
        .max(1)
        .min(config.num_devices);
    let outlying_devices: Vec<String> = (0..num_outlying).map(|d| format!("device_{d}")).collect();

    let mut records = Vec::with_capacity(config.num_points);
    for _ in 0..config.num_points {
        let device = rng.next_below(config.num_devices);
        let device_is_outlying = device < num_outlying;
        // Label noise: swap which population the reading is drawn from.
        let draw_outlying = if rng.next_f64() < config.label_noise {
            !device_is_outlying
        } else {
            device_is_outlying
        };
        let mut value = if draw_outlying {
            normal(&mut rng, config.outlier_mean, config.outlier_std)
        } else {
            normal(&mut rng, config.inlier_mean, config.inlier_std)
        };
        // Measurement noise: replace the reading with uniform garbage.
        if rng.next_f64() < config.measurement_noise {
            value = rng.next_f64() * 80.0;
        }
        records.push(LabeledRecord {
            record: Record::new(vec![value], vec![format!("device_{device}")]),
            is_anomalous: device_is_outlying,
        });
    }
    DeviceWorkload {
        records,
        outlying_devices,
    }
}

/// The contamination dataset of Figure 3 / Appendix A: `n` two-dimensional
/// points, a `contamination` fraction of which are drawn from a uniform
/// cluster of radius 50 centred at (1000, 1000) while the rest are uniform
/// with radius 50 around the origin. Returns `(points, is_outlier)`.
pub fn contamination_dataset(
    n: usize,
    contamination: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<bool>) {
    assert!((0.0..=1.0).contains(&contamination));
    let mut rng = SplitMix64::new(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let is_outlier = rng.next_f64() < contamination;
        let (cx, cy) = if is_outlier { (1000.0, 1000.0) } else { (0.0, 0.0) };
        // Uniform point in a disc of radius 50.
        let angle = rng.next_f64() * 2.0 * std::f64::consts::PI;
        let radius = 50.0 * rng.next_f64().sqrt();
        points.push(vec![cx + radius * angle.cos(), cy + radius * angle.sin()]);
        labels.push(is_outlier);
    }
    (points, labels)
}

/// One event of the time-varying adaptivity stream of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedReading {
    /// Simulated arrival time in seconds from the start of the experiment.
    pub time_seconds: f64,
    /// The emitting device's id attribute.
    pub device: String,
    /// The metric reading.
    pub value: f64,
}

/// Generate the scripted 400-second stream of Figure 5.
///
/// * 0–50 s: all 100 devices emit `N(10, 10)`.
/// * 50–100 s: device `D0` emits `N(70, 10)` (first anomaly), others unchanged.
/// * 100–150 s: back to normal.
/// * 150–225 s: every device shifts to `N(40, 10)`.
/// * 225–250 s: `D0` drops to `N(−10, 10)` (second anomaly).
/// * 250–300 s: back to `N(40, 10)`.
/// * 300–400 s: baseline continues, except 320–324 s where the arrival rate
///   rises tenfold and the extra readings are drawn from `N(85, 15)` (the
///   noise spike that trips per-tuple damped samplers).
///
/// `base_rate` is the number of points generated per simulated second at the
/// normal arrival rate (the paper's deployment sees ~20K/s; benches scale
/// this down so the experiment stays laptop-sized).
pub fn adaptivity_stream(base_rate: usize, seed: u64) -> Vec<TimedReading> {
    let mut rng = SplitMix64::new(seed);
    let num_devices = 100usize;
    let mut out = Vec::new();
    let total_seconds = 400usize;
    for second in 0..total_seconds {
        let t = second as f64;
        let spike = (320..324).contains(&second);
        let rate = if spike { base_rate * 10 } else { base_rate };
        for i in 0..rate {
            let device = rng.next_below(num_devices);
            let is_d0 = device == 0;
            let value = if spike && i >= base_rate {
                // The burst itself carries noisy high readings.
                normal(&mut rng, 85.0, 15.0)
            } else if (50..100).contains(&second) && is_d0 {
                normal(&mut rng, 70.0, 10.0)
            } else if (225..250).contains(&second) && is_d0 {
                normal(&mut rng, -10.0, 10.0)
            } else if (150..300).contains(&second) {
                normal(&mut rng, 40.0, 10.0)
            } else {
                normal(&mut rng, 10.0, 10.0)
            };
            out.push(TimedReading {
                time_seconds: t + i as f64 / rate as f64,
                device: format!("D{device}"),
                value,
            });
        }
    }
    out
}

/// A Zipf-distributed attribute stream shaped like the heavy-hitter workloads
/// of Figure 6: `n` items drawn from `cardinality` distinct values with skew
/// `s` (production attribute streams such as device ids are highly skewed).
pub fn zipf_attribute_stream(n: usize, cardinality: usize, s: f64, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let zipf = Zipf::new(cardinality, s);
    (0..n).map(|_| zipf.sample(&mut rng) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_workload_has_expected_shape() {
        let config = DeviceWorkloadConfig {
            num_points: 10_000,
            num_devices: 100,
            outlying_device_fraction: 0.05,
            ..DeviceWorkloadConfig::default()
        };
        let workload = device_workload(&config);
        assert_eq!(workload.records.len(), 10_000);
        assert_eq!(workload.outlying_devices.len(), 5);
        // Roughly 5% of points are anomalous (they come from 5% of devices).
        let anomalous = workload.records.iter().filter(|r| r.is_anomalous).count();
        assert!((300..700).contains(&anomalous), "anomalous = {anomalous}");
        // Anomalous points have much higher readings on average.
        let mean_of = |flag: bool| {
            let values: Vec<f64> = workload
                .records
                .iter()
                .filter(|r| r.is_anomalous == flag)
                .map(|r| r.record.metrics[0])
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        assert!(mean_of(true) > 60.0);
        assert!(mean_of(false) < 15.0);
    }

    #[test]
    fn device_workload_is_deterministic() {
        let config = DeviceWorkloadConfig {
            num_points: 1_000,
            num_devices: 50,
            ..DeviceWorkloadConfig::default()
        };
        let a = device_workload(&config);
        let b = device_workload(&config);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn label_noise_mixes_populations() {
        let mut config = DeviceWorkloadConfig {
            num_points: 20_000,
            num_devices: 100,
            outlying_device_fraction: 0.1,
            ..DeviceWorkloadConfig::default()
        };
        config.label_noise = 0.5;
        let noisy = device_workload(&config);
        // With 50% label noise the anomalous devices' mean reading is pulled
        // toward the middle.
        let anomalous_mean = {
            let values: Vec<f64> = noisy
                .records
                .iter()
                .filter(|r| r.is_anomalous)
                .map(|r| r.record.metrics[0])
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        assert!(anomalous_mean > 25.0 && anomalous_mean < 55.0);
    }

    #[test]
    fn contamination_dataset_shape() {
        let (points, labels) = contamination_dataset(10_000, 0.3, 7);
        assert_eq!(points.len(), 10_000);
        let outliers = labels.iter().filter(|&&o| o).count();
        assert!((2_500..3_500).contains(&outliers));
        for (p, &is_outlier) in points.iter().zip(labels.iter()) {
            let (cx, cy) = if is_outlier { (1000.0, 1000.0) } else { (0.0, 0.0) };
            let dist = ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
            assert!(dist <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn adaptivity_stream_follows_script() {
        let stream = adaptivity_stream(20, 3);
        // Total points: 400s * 20/s plus the 4-second tenfold burst.
        assert_eq!(stream.len(), 400 * 20 + 4 * 180);
        // During 50-100s, D0 readings are high.
        let d0_mean = |from: f64, to: f64| {
            let values: Vec<f64> = stream
                .iter()
                .filter(|r| r.device == "D0" && r.time_seconds >= from && r.time_seconds < to)
                .map(|r| r.value)
                .collect();
            values.iter().sum::<f64>() / values.len().max(1) as f64
        };
        assert!(d0_mean(55.0, 95.0) > 50.0);
        assert!(d0_mean(105.0, 145.0) < 30.0);
        assert!(d0_mean(228.0, 248.0) < 10.0);
        // Arrival rate spikes tenfold during the burst window.
        let burst_points = stream
            .iter()
            .filter(|r| r.time_seconds >= 320.0 && r.time_seconds < 324.0)
            .count();
        assert_eq!(burst_points, 4 * 200);
    }

    #[test]
    fn zipf_stream_is_skewed() {
        let stream = zipf_attribute_stream(50_000, 1000, 1.2, 5);
        assert_eq!(stream.len(), 50_000);
        let zeros = stream.iter().filter(|&&x| x == 0).count();
        let hundreds = stream.iter().filter(|&&x| x == 100).count();
        assert!(zeros > hundreds * 5);
    }
}
