//! DBSherlock-style OLTP anomaly workload generator (Table 4).
//!
//! The paper evaluates MDP's ability to identify an abnormally behaving
//! server within an 11-server OLTP cluster, using the performance-counter
//! traces and labels collected by the DBSherlock study (Yoon et al., SIGMOD
//! 2016) over TPC-C and TPC-E. Those traces are not redistributable, so this
//! module synthesizes clusters with the same structure: every server emits
//! rows of correlated OS/DBMS performance counters, and exactly one server's
//! counters are perturbed according to one of the nine anomaly types. The
//! experiment logic is unchanged — can MDP's classifier + explanation recover
//! the anomalous `hostname` attribute?

use crate::Record;
use mb_stats::rand_ext::{normal, SplitMix64};

/// The nine anomaly types of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyType {
    /// A1: workload spike (transaction rate surge).
    WorkloadSpike,
    /// A2: I/O stress from a co-located process.
    IoStress,
    /// A3: a database backup running.
    DbBackup,
    /// A4: a table restore running.
    TableRestore,
    /// A5: CPU stress from a co-located process.
    CpuStress,
    /// A6: flushing logs/tables.
    FlushLogTable,
    /// A7: network congestion.
    NetworkCongestion,
    /// A8: lock contention.
    LockContention,
    /// A9: a poorly written query.
    PoorlyWrittenQuery,
}

impl AnomalyType {
    /// All nine anomaly types in Table 4 order (A1–A9).
    pub fn all() -> [AnomalyType; 9] {
        [
            AnomalyType::WorkloadSpike,
            AnomalyType::IoStress,
            AnomalyType::DbBackup,
            AnomalyType::TableRestore,
            AnomalyType::CpuStress,
            AnomalyType::FlushLogTable,
            AnomalyType::NetworkCongestion,
            AnomalyType::LockContention,
            AnomalyType::PoorlyWrittenQuery,
        ]
    }

    /// Table 4 label (A1–A9).
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyType::WorkloadSpike => "A1",
            AnomalyType::IoStress => "A2",
            AnomalyType::DbBackup => "A3",
            AnomalyType::TableRestore => "A4",
            AnomalyType::CpuStress => "A5",
            AnomalyType::FlushLogTable => "A6",
            AnomalyType::NetworkCongestion => "A7",
            AnomalyType::LockContention => "A8",
            AnomalyType::PoorlyWrittenQuery => "A9",
        }
    }

    /// The counter indices this anomaly perturbs most strongly, together with
    /// the shift (in multiples of the counter's baseline standard deviation).
    /// These play the role of the per-anomaly metric sets used by the paper's
    /// QE queries; the "poorly written query" anomaly (A9) deliberately
    /// perturbs counters outside the common QS set, mirroring the paper's
    /// observation that its correlated metrics are "substantially different".
    pub fn affected_counters(&self) -> Vec<(usize, f64)> {
        match self {
            AnomalyType::WorkloadSpike => vec![(0, 6.0), (1, 5.0), (2, 4.0), (10, 3.0)],
            AnomalyType::IoStress => vec![(3, 6.0), (4, 6.0), (11, 3.0)],
            AnomalyType::DbBackup => vec![(3, 4.0), (5, 5.0), (12, 3.0)],
            AnomalyType::TableRestore => vec![(4, 5.0), (5, 4.0), (13, 3.0)],
            AnomalyType::CpuStress => vec![(6, 7.0), (7, 5.0), (14, 3.0)],
            AnomalyType::FlushLogTable => vec![(5, 3.0), (8, 4.0), (11, 2.0)],
            AnomalyType::NetworkCongestion => vec![(9, 6.0), (10, 5.0)],
            AnomalyType::LockContention => vec![(8, 6.0), (2, 3.0), (13, 4.0)],
            AnomalyType::PoorlyWrittenQuery => vec![(150, 5.0), (151, 4.0), (152, 3.0)],
        }
    }
}

/// The OLTP workload flavour (affects baseline counter levels only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OltpWorkload {
    /// TPC-C-like.
    TpcC,
    /// TPC-E-like.
    TpcE,
}

/// Configuration for one generated cluster experiment.
#[derive(Debug, Clone, Copy)]
pub struct DbsherlockConfig {
    /// Number of servers in the cluster (paper: 11).
    pub num_servers: usize,
    /// Number of rows (observation intervals) per server.
    pub rows_per_server: usize,
    /// Total number of performance counters per row (paper: 200+).
    pub num_counters: usize,
    /// Which workload's baselines to use.
    pub workload: OltpWorkload,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbsherlockConfig {
    fn default() -> Self {
        DbsherlockConfig {
            num_servers: 11,
            rows_per_server: 200,
            num_counters: 200,
            workload: OltpWorkload::TpcC,
            seed: 0xD5,
        }
    }
}

/// A generated cluster experiment.
#[derive(Debug, Clone)]
pub struct ClusterExperiment {
    /// The injected anomaly type.
    pub anomaly: AnomalyType,
    /// Hostname of the (single) anomalous server — the ground truth MDP must
    /// recover.
    pub anomalous_host: String,
    /// Rows: `num_counters` metrics, one `hostname` attribute.
    pub records: Vec<Record>,
}

/// The counter indices used by the paper's single "QS" query (a fixed set of
/// 15 metrics chosen by feature selection); it covers the counters perturbed
/// by A1–A8 but not those of A9, reproducing Table 4's QS failure on A9.
pub fn qs_metric_indices() -> Vec<usize> {
    vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14]
}

/// The per-anomaly metric sets used by the "QE" queries.
pub fn qe_metric_indices(anomaly: AnomalyType) -> Vec<usize> {
    anomaly
        .affected_counters()
        .into_iter()
        .map(|(idx, _)| idx)
        .collect()
}

/// Generate one cluster experiment with the given anomaly injected on one
/// server.
pub fn generate_cluster(anomaly: AnomalyType, config: &DbsherlockConfig) -> ClusterExperiment {
    assert!(config.num_servers >= 2, "need at least two servers");
    assert!(config.num_counters > 160, "need the full counter set");
    let mut rng = SplitMix64::new(
        config
            .seed
            .wrapping_add(anomaly.label().as_bytes()[1] as u64),
    );
    // Per-counter baselines: TPC-E-like runs slightly hotter on CPU counters,
    // colder on I/O, which only shifts levels, not the experiment's logic.
    let workload_offset = match config.workload {
        OltpWorkload::TpcC => 0.0,
        OltpWorkload::TpcE => 5.0,
    };
    let baselines: Vec<f64> = (0..config.num_counters)
        .map(|i| 20.0 + (i % 17) as f64 * 3.0 + workload_offset)
        .collect();
    let sigmas: Vec<f64> = (0..config.num_counters)
        .map(|i| 1.0 + (i % 5) as f64 * 0.5)
        .collect();

    let anomalous_server = rng.next_below(config.num_servers);
    let anomalous_host = format!("host_{anomalous_server}");
    let affected = anomaly.affected_counters();

    let mut records = Vec::with_capacity(config.num_servers * config.rows_per_server);
    for server in 0..config.num_servers {
        let hostname = format!("host_{server}");
        for _ in 0..config.rows_per_server {
            // A cluster-wide load factor makes counters correlated across
            // servers (as real clusters are), so naive per-counter
            // thresholding is not enough.
            let load = normal(&mut rng, 0.0, 1.0);
            let mut metrics = Vec::with_capacity(config.num_counters);
            for c in 0..config.num_counters {
                let mut value = baselines[c] + 0.5 * sigmas[c] * load
                    + normal(&mut rng, 0.0, sigmas[c]);
                if server == anomalous_server {
                    if let Some(&(_, shift)) = affected.iter().find(|(idx, _)| *idx == c) {
                        value += shift * sigmas[c];
                    }
                }
                metrics.push(value);
            }
            records.push(Record::new(metrics, vec![hostname.clone()]));
        }
    }
    ClusterExperiment {
        anomaly,
        anomalous_host,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_anomalies_have_unique_labels() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = AnomalyType::all().iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn qs_metrics_cover_a1_to_a8_but_not_a9() {
        let qs: std::collections::HashSet<usize> = qs_metric_indices().into_iter().collect();
        for anomaly in AnomalyType::all() {
            let covered = anomaly
                .affected_counters()
                .iter()
                .any(|(idx, _)| qs.contains(idx));
            if anomaly == AnomalyType::PoorlyWrittenQuery {
                assert!(!covered, "A9 should not be covered by QS metrics");
            } else {
                assert!(covered, "{} should be covered by QS metrics", anomaly.label());
            }
        }
    }

    #[test]
    fn cluster_has_expected_shape() {
        let config = DbsherlockConfig {
            rows_per_server: 50,
            ..DbsherlockConfig::default()
        };
        let experiment = generate_cluster(AnomalyType::CpuStress, &config);
        assert_eq!(experiment.records.len(), 11 * 50);
        assert_eq!(experiment.records[0].metrics.len(), 200);
        assert_eq!(experiment.records[0].attributes.len(), 1);
        assert!(experiment.anomalous_host.starts_with("host_"));
        // Exactly 11 distinct hostnames.
        let hosts: std::collections::HashSet<&String> = experiment
            .records
            .iter()
            .map(|r| &r.attributes[0])
            .collect();
        assert_eq!(hosts.len(), 11);
    }

    #[test]
    fn anomalous_server_counters_are_shifted() {
        let config = DbsherlockConfig {
            rows_per_server: 100,
            ..DbsherlockConfig::default()
        };
        let experiment = generate_cluster(AnomalyType::IoStress, &config);
        let affected = AnomalyType::IoStress.affected_counters();
        let (counter, _) = affected[0];
        let mean_for = |host: &str| {
            let values: Vec<f64> = experiment
                .records
                .iter()
                .filter(|r| r.attributes[0] == host)
                .map(|r| r.metrics[counter])
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        let anomalous_mean = mean_for(&experiment.anomalous_host);
        // Every healthy host's mean on the affected counter is clearly lower.
        for server in 0..11 {
            let host = format!("host_{server}");
            if host != experiment.anomalous_host {
                assert!(
                    anomalous_mean > mean_for(&host) + 3.0,
                    "anomalous shift not visible vs {host}"
                );
            }
        }
    }

    #[test]
    fn qe_metrics_point_at_affected_counters() {
        for anomaly in AnomalyType::all() {
            let qe = qe_metric_indices(anomaly);
            assert!(!qe.is_empty());
            let affected: Vec<usize> = anomaly
                .affected_counters()
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            assert_eq!(qe, affected);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = DbsherlockConfig {
            rows_per_server: 20,
            ..DbsherlockConfig::default()
        };
        let a = generate_cluster(AnomalyType::DbBackup, &config);
        let b = generate_cluster(AnomalyType::DbBackup, &config);
        assert_eq!(a.anomalous_host, b.anomalous_host);
        assert_eq!(a.records, b.records);
    }
}
