//! Rule-based (supervised) classification.
//!
//! Section 3.2 and the hybrid-supervision case study (Section 6.4) show users
//! complementing the unsupervised MDP classifier with explicit rules — "flag
//! every reading with power drain greater than 100 W", or "flag trips whose
//! externally computed quality score is below 0.3". A rule classifier is a
//! conjunction/disjunction of metric predicates; it produces labels without
//! training and can be OR-ed or AND-ed with other classifiers.

use crate::Label;

/// Comparison operator for a metric predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Metric value strictly greater than the constant.
    GreaterThan,
    /// Metric value greater than or equal to the constant.
    GreaterOrEqual,
    /// Metric value strictly less than the constant.
    LessThan,
    /// Metric value less than or equal to the constant.
    LessOrEqual,
    /// Metric value equal to the constant (exact floating-point equality; use
    /// with discretized metrics).
    Equal,
}

/// A single predicate over one metric dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPredicate {
    /// Index of the metric this predicate inspects.
    pub metric_index: usize,
    /// The comparison to apply.
    pub comparison: Comparison,
    /// The constant to compare against.
    pub value: f64,
}

impl MetricPredicate {
    /// Create a predicate.
    pub fn new(metric_index: usize, comparison: Comparison, value: f64) -> Self {
        MetricPredicate {
            metric_index,
            comparison,
            value,
        }
    }

    /// Evaluate the predicate against a metric vector. Out-of-range indices
    /// and non-finite values evaluate to `false` (never flag on garbage).
    pub fn matches(&self, metrics: &[f64]) -> bool {
        let Some(&x) = metrics.get(self.metric_index) else {
            return false;
        };
        if !x.is_finite() {
            return false;
        }
        match self.comparison {
            Comparison::GreaterThan => x > self.value,
            Comparison::GreaterOrEqual => x >= self.value,
            Comparison::LessThan => x < self.value,
            Comparison::LessOrEqual => x <= self.value,
            Comparison::Equal => x == self.value,
        }
    }
}

/// How a rule combines its predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCombinator {
    /// Flag when *any* predicate matches.
    Any,
    /// Flag when *all* predicates match.
    All,
}

/// A rule-based classifier: a set of predicates combined with AND/OR whose
/// match produces an [`Label::Outlier`] label.
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    predicates: Vec<MetricPredicate>,
    combinator: RuleCombinator,
}

impl RuleClassifier {
    /// Create a rule classifier.
    pub fn new(predicates: Vec<MetricPredicate>, combinator: RuleCombinator) -> Self {
        RuleClassifier {
            predicates,
            combinator,
        }
    }

    /// Convenience constructor for the common single-predicate rule
    /// ("metric i greater than c").
    pub fn single(metric_index: usize, comparison: Comparison, value: f64) -> Self {
        RuleClassifier {
            predicates: vec![MetricPredicate::new(metric_index, comparison, value)],
            combinator: RuleCombinator::All,
        }
    }

    /// Classify one metric vector. An empty rule never flags.
    pub fn classify(&self, metrics: &[f64]) -> Label {
        if self.predicates.is_empty() {
            return Label::Inlier;
        }
        let flagged = match self.combinator {
            RuleCombinator::Any => self.predicates.iter().any(|p| p.matches(metrics)),
            RuleCombinator::All => self.predicates.iter().all(|p| p.matches(metrics)),
        };
        Label::from_outlier_flag(flagged)
    }

    /// The rule's predicates.
    pub fn predicates(&self) -> &[MetricPredicate] {
        &self.predicates
    }
}

/// Combine two labels with a logical OR (outlier wins) — the combinator used
/// by the hybrid-supervision pipeline in Section 6.4.
pub fn label_or(a: Label, b: Label) -> Label {
    Label::from_outlier_flag(a.is_outlier() || b.is_outlier())
}

/// Combine two labels with a logical AND (both must be outliers).
pub fn label_and(a: Label, b: Label) -> Label {
    Label::from_outlier_flag(a.is_outlier() && b.is_outlier())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_comparisons() {
        let metrics = [5.0, 10.0];
        assert!(MetricPredicate::new(0, Comparison::GreaterThan, 4.0).matches(&metrics));
        assert!(!MetricPredicate::new(0, Comparison::GreaterThan, 5.0).matches(&metrics));
        assert!(MetricPredicate::new(0, Comparison::GreaterOrEqual, 5.0).matches(&metrics));
        assert!(MetricPredicate::new(1, Comparison::LessThan, 20.0).matches(&metrics));
        assert!(!MetricPredicate::new(1, Comparison::LessOrEqual, 9.0).matches(&metrics));
        assert!(MetricPredicate::new(1, Comparison::Equal, 10.0).matches(&metrics));
    }

    #[test]
    fn predicate_handles_bad_input() {
        assert!(!MetricPredicate::new(5, Comparison::GreaterThan, 0.0).matches(&[1.0]));
        assert!(!MetricPredicate::new(0, Comparison::GreaterThan, 0.0).matches(&[f64::NAN]));
    }

    #[test]
    fn power_drain_rule_from_paper() {
        // "capture all readings with power drain greater than 100W"
        let rule = RuleClassifier::single(0, Comparison::GreaterThan, 100.0);
        assert_eq!(rule.classify(&[150.0]), Label::Outlier);
        assert_eq!(rule.classify(&[50.0]), Label::Inlier);
    }

    #[test]
    fn any_vs_all_combinators() {
        let predicates = vec![
            MetricPredicate::new(0, Comparison::GreaterThan, 10.0),
            MetricPredicate::new(1, Comparison::LessThan, 0.0),
        ];
        let any = RuleClassifier::new(predicates.clone(), RuleCombinator::Any);
        let all = RuleClassifier::new(predicates, RuleCombinator::All);
        assert_eq!(any.classify(&[20.0, 5.0]), Label::Outlier);
        assert_eq!(all.classify(&[20.0, 5.0]), Label::Inlier);
        assert_eq!(all.classify(&[20.0, -1.0]), Label::Outlier);
        assert_eq!(any.classify(&[5.0, 5.0]), Label::Inlier);
    }

    #[test]
    fn empty_rule_never_flags() {
        let rule = RuleClassifier::new(vec![], RuleCombinator::Any);
        assert_eq!(rule.classify(&[1e9]), Label::Inlier);
    }

    #[test]
    fn label_combinators() {
        assert_eq!(label_or(Label::Inlier, Label::Outlier), Label::Outlier);
        assert_eq!(label_or(Label::Inlier, Label::Inlier), Label::Inlier);
        assert_eq!(label_and(Label::Outlier, Label::Outlier), Label::Outlier);
        assert_eq!(label_and(Label::Outlier, Label::Inlier), Label::Inlier);
    }
}
