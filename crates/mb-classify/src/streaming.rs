//! Streaming classification with ADR-based retraining (Section 4.2, the left
//! half of Figure 2).
//!
//! The streaming classifier maintains two Adaptable Damped Reservoirs:
//!
//! * an **input ADR** sampling recent metric vectors, from which the robust
//!   estimator (MAD or MCD) is periodically retrained, and
//! * a **score ADR** sampling recent outlier scores, from which the
//!   percentile threshold is periodically recomputed.
//!
//! Both reservoirs decay when the caller signals a period boundary (tuple- or
//! time-based), which is what lets the classifier adapt to distribution
//! shifts while staying resilient to arrival-rate spikes (Figure 5).

use crate::threshold::StreamingPercentileThreshold;
use crate::{Classification, Label};
use mb_sketch::adr::{AdaptableDampedReservoir, DecayPolicy};
use mb_sketch::StreamSampler;
use mb_stats::{Estimator, Result};

/// Configuration for the streaming classifier.
#[derive(Debug, Clone, Copy)]
pub struct StreamingClassifierConfig {
    /// Size of the input (training) reservoir. Paper default: 10K.
    pub input_reservoir_size: usize,
    /// Size of the score reservoir. Paper default: 10K–20K.
    pub score_reservoir_size: usize,
    /// Decay rate applied to both reservoirs at each period boundary.
    /// Paper default: 0.01 every 100K points.
    pub decay_rate: f64,
    /// Retrain the model every this many observed points.
    pub retrain_period: u64,
    /// Target score percentile above which points are outliers (default 0.99).
    pub target_percentile: f64,
    /// Number of points between threshold refreshes.
    pub threshold_refresh_period: u64,
    /// Minimum number of buffered points before the first model training.
    pub warmup_points: usize,
    /// RNG seed for the reservoirs.
    pub seed: u64,
}

impl Default for StreamingClassifierConfig {
    fn default() -> Self {
        StreamingClassifierConfig {
            input_reservoir_size: 10_000,
            score_reservoir_size: 10_000,
            decay_rate: 0.01,
            retrain_period: 10_000,
            target_percentile: 0.99,
            threshold_refresh_period: 1_000,
            warmup_points: 100,
            seed: 0xACB7,
        }
    }
}

/// Streaming classifier wrapping any [`Estimator`].
#[derive(Debug, Clone)]
pub struct StreamingClassifier<E: Estimator> {
    estimator: E,
    config: StreamingClassifierConfig,
    input_reservoir: AdaptableDampedReservoir<Vec<f64>>,
    threshold: StreamingPercentileThreshold,
    points_since_retrain: u64,
    total_points: u64,
    model_trained: bool,
}

impl<E: Estimator> StreamingClassifier<E> {
    /// Create a streaming classifier around an (untrained) estimator.
    pub fn new(estimator: E, config: StreamingClassifierConfig) -> Result<Self> {
        let input_reservoir = AdaptableDampedReservoir::new(
            config.input_reservoir_size,
            config.decay_rate,
            DecayPolicy::Manual,
            config.seed,
        );
        let threshold = StreamingPercentileThreshold::new(
            config.target_percentile,
            config.score_reservoir_size,
            config.decay_rate,
            config.threshold_refresh_period,
            config.seed.wrapping_add(1),
        )?;
        Ok(StreamingClassifier {
            estimator,
            config,
            input_reservoir,
            threshold,
            points_since_retrain: 0,
            total_points: 0,
            model_trained: false,
        })
    }

    /// Observe one point's metrics, retraining/refreshing as configured, and
    /// return its classification. Before the model is first trained (during
    /// warm-up) every point is labeled an inlier with score 0.
    pub fn observe(&mut self, metrics: &[f64]) -> Classification {
        self.total_points += 1;
        self.points_since_retrain += 1;
        self.input_reservoir.observe(metrics.to_vec());

        // Initial training once enough points are buffered, then periodic
        // retraining on the damped reservoir.
        let due_for_training = if self.model_trained {
            self.points_since_retrain >= self.config.retrain_period
        } else {
            self.input_reservoir.len() >= self.config.warmup_points
        };
        if due_for_training {
            self.retrain();
        }

        if !self.model_trained {
            return Classification {
                score: 0.0,
                label: Label::Inlier,
            };
        }
        match self.estimator.score(metrics) {
            Ok(score) => self.threshold.observe_and_classify(score),
            Err(_) => Classification {
                score: 0.0,
                label: Label::Inlier,
            },
        }
    }

    /// Force a model retrain from the current input reservoir.
    pub fn retrain(&mut self) {
        self.points_since_retrain = 0;
        let sample = self.input_reservoir.snapshot();
        if sample.is_empty() {
            return;
        }
        if self.estimator.train(&sample).is_ok() {
            self.model_trained = true;
        }
    }

    /// Signal a decay period boundary: both reservoirs are decayed, and the
    /// threshold drift counters are reset.
    pub fn on_period_boundary(&mut self) {
        self.input_reservoir.decay();
        self.threshold.decay();
        self.threshold.refresh();
        self.threshold.reset_drift_window();
    }

    /// Whether the model has been trained at least once.
    pub fn is_trained(&self) -> bool {
        self.model_trained
    }

    /// Total number of points observed.
    pub fn observed(&self) -> u64 {
        self.total_points
    }

    /// Points observed since the model was last (re)trained — the model
    /// staleness a monitoring layer wants to watch. Resets to 0 on every
    /// [`StreamingClassifier::retrain`], including warm-up training.
    pub fn points_since_retrain(&self) -> u64 {
        self.points_since_retrain
    }

    /// The current score cutoff, if available.
    pub fn current_cutoff(&mut self) -> Option<f64> {
        self.threshold.cutoff().ok()
    }

    /// Whether the observed outlier rate has drifted from the target
    /// percentile (see [`StreamingPercentileThreshold::drift_detected`]).
    pub fn drift_detected(&self, confidence: f64) -> bool {
        self.threshold.drift_detected(confidence).unwrap_or(false)
    }

    /// Access the wrapped estimator (e.g. to read MCD location/scatter).
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::mad::MadEstimator;
    use mb_stats::mcd::McdEstimator;
    use mb_stats::rand_ext::{normal, SplitMix64};

    fn test_config() -> StreamingClassifierConfig {
        StreamingClassifierConfig {
            input_reservoir_size: 2_000,
            score_reservoir_size: 2_000,
            decay_rate: 0.05,
            retrain_period: 2_000,
            target_percentile: 0.99,
            threshold_refresh_period: 500,
            warmup_points: 200,
            seed: 7,
        }
    }

    #[test]
    fn warmup_points_are_inliers() {
        let mut c = StreamingClassifier::new(MadEstimator::new(), test_config()).unwrap();
        for i in 0..10 {
            let r = c.observe(&[i as f64]);
            assert_eq!(r.label, Label::Inlier);
        }
        assert!(!c.is_trained());
    }

    #[test]
    fn trains_after_warmup_and_flags_extremes() {
        let mut rng = SplitMix64::new(1);
        let mut c = StreamingClassifier::new(MadEstimator::new(), test_config()).unwrap();
        for _ in 0..5_000 {
            c.observe(&[normal(&mut rng, 10.0, 1.0)]);
        }
        assert!(c.is_trained());
        let extreme = c.observe(&[1_000.0]);
        assert_eq!(extreme.label, Label::Outlier);
        assert!(extreme.score > 100.0);
        let typical = c.observe(&[10.0]);
        assert_eq!(typical.label, Label::Inlier);
    }

    #[test]
    fn outlier_rate_tracks_target_percentile() {
        let mut rng = SplitMix64::new(2);
        let mut c = StreamingClassifier::new(MadEstimator::new(), test_config()).unwrap();
        let n = 50_000;
        let mut outliers = 0usize;
        for i in 0..n {
            let r = c.observe(&[normal(&mut rng, 0.0, 1.0)]);
            if r.label.is_outlier() {
                outliers += 1;
            }
            if i % 10_000 == 9_999 {
                c.on_period_boundary();
            }
        }
        let fraction = outliers as f64 / n as f64;
        assert!((0.003..0.03).contains(&fraction), "fraction = {fraction}");
    }

    #[test]
    fn adapts_to_distribution_shift_after_retraining() {
        let mut rng = SplitMix64::new(3);
        let mut cfg = test_config();
        cfg.retrain_period = 1_000;
        cfg.decay_rate = 0.5;
        let mut c = StreamingClassifier::new(MadEstimator::new(), cfg).unwrap();
        // Regime 1: values around 10.
        for i in 0..10_000 {
            c.observe(&[normal(&mut rng, 10.0, 1.0)]);
            if i % 2_000 == 1_999 {
                c.on_period_boundary();
            }
        }
        // A value of 40 is extreme in regime 1.
        assert!(c.observe(&[40.0]).label.is_outlier());
        // Regime 2: every device moves to 40 (the Figure 5 "all devices shift"
        // scenario). After enough points and boundaries, 40 becomes normal.
        for i in 0..20_000 {
            c.observe(&[normal(&mut rng, 40.0, 1.0)]);
            if i % 2_000 == 1_999 {
                c.on_period_boundary();
            }
        }
        assert_eq!(c.observe(&[40.0]).label, Label::Inlier);
        // And a drop to -10 (D0's second anomaly in Figure 5) is now extreme.
        assert!(c.observe(&[-10.0]).label.is_outlier());
    }

    #[test]
    fn multivariate_streaming_with_mcd() {
        let mut rng = SplitMix64::new(4);
        let mut cfg = test_config();
        cfg.input_reservoir_size = 500;
        cfg.retrain_period = 5_000;
        let mut c =
            StreamingClassifier::new(McdEstimator::with_defaults(), cfg).unwrap();
        for _ in 0..3_000 {
            c.observe(&[normal(&mut rng, 0.0, 1.0), normal(&mut rng, 5.0, 2.0)]);
        }
        assert!(c.is_trained());
        assert!(c.observe(&[100.0, 100.0]).label.is_outlier());
        assert_eq!(c.observe(&[0.0, 5.0]).label, Label::Inlier);
    }

    #[test]
    fn drift_detection_after_shift_without_retrain() {
        let mut rng = SplitMix64::new(5);
        let mut cfg = test_config();
        // Disable retraining so the model (and hence the score scale) stays
        // fit to the first regime; the drift detector must notice that the
        // outlier rate then explodes under the second regime.
        cfg.retrain_period = u64::MAX;
        let mut c = StreamingClassifier::new(MadEstimator::new(), cfg).unwrap();
        for _ in 0..2_000 {
            c.observe(&[normal(&mut rng, 0.0, 1.0)]);
        }
        // Period boundary: threshold refreshed on first-regime scores, drift
        // counters reset.
        c.on_period_boundary();
        assert!(!c.drift_detected(0.95));
        for _ in 0..2_000 {
            c.observe(&[normal(&mut rng, 50.0, 1.0)]);
        }
        assert!(c.drift_detected(0.95));
    }

    #[test]
    fn cutoff_is_exposed() {
        let mut rng = SplitMix64::new(6);
        let mut c = StreamingClassifier::new(MadEstimator::new(), test_config()).unwrap();
        assert!(c.current_cutoff().is_none());
        for _ in 0..2_000 {
            c.observe(&[normal(&mut rng, 0.0, 1.0)]);
        }
        let cutoff = c.current_cutoff().unwrap();
        assert!(cutoff > 1.0 && cutoff < 10.0, "cutoff = {cutoff}");
    }
}
