//! Classification operators for MacroBase-RS (Section 4 of the paper).
//!
//! MacroBase's classification stage labels each point *outlier* or *inlier*
//! from its metrics. This crate provides the pieces the MDP pipeline
//! assembles (Figure 2, left half):
//!
//! * [`threshold`] — percentile-based score cutoffs, either static (one-shot)
//!   or maintained over a damped reservoir of scores (streaming).
//! * [`rule`] — rule-based (supervised) classifiers for the hybrid
//!   supervision case study of Section 6.4.
//! * [`batch`] — one-shot classification: train a robust estimator on the
//!   whole batch, score everything, cut at the target percentile.
//! * [`streaming`] — streaming classification with ADR-based model
//!   retraining and ADR-based quantile maintenance.
//!
//! The estimators themselves (MAD, MCD, Z-score) come from `mb-stats`; this
//! crate layers training/thresholding policy on top of them.
//!
//! ## Example
//!
//! One-shot classification: wrap a robust estimator, train on the batch, and
//! cut at the target percentile:
//!
//! ```
//! use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
//! use mb_stats::mad::MadEstimator;
//!
//! let mut metrics: Vec<Vec<f64>> =
//!     (0..100).map(|i| vec![10.0 + (i % 5) as f64]).collect();
//! metrics.push(vec![500.0]); // one wild reading
//!
//! let mut classifier =
//!     BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
//! let labels = classifier.classify_batch(&metrics).unwrap();
//! assert!(labels.last().unwrap().label.is_outlier());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod rule;
pub mod streaming;
pub mod threshold;

/// The binary label assigned by MacroBase's default classifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The point lies within the bulk of the distribution.
    Inlier,
    /// The point is statistically deviant (far from the bulk).
    Outlier,
}

impl Label {
    /// Whether this label is [`Label::Outlier`].
    pub fn is_outlier(self) -> bool {
        matches!(self, Label::Outlier)
    }

    /// Construct a label from an outlier flag.
    pub fn from_outlier_flag(is_outlier: bool) -> Self {
        if is_outlier {
            Label::Outlier
        } else {
            Label::Inlier
        }
    }
}

/// A scored, labeled classification outcome for one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// The outlier score assigned by the underlying estimator.
    pub score: f64,
    /// The label implied by the score and the active threshold.
    pub label: Label,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_trip() {
        assert!(Label::Outlier.is_outlier());
        assert!(!Label::Inlier.is_outlier());
        assert_eq!(Label::from_outlier_flag(true), Label::Outlier);
        assert_eq!(Label::from_outlier_flag(false), Label::Inlier);
    }
}
