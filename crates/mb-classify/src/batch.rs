//! One-shot (batch) classification.
//!
//! In one-shot mode (Section 3.2, "operating modes"), MacroBase trains its
//! robust estimator on the whole batch (or a uniform sample of it — Figure 9
//! studies the accuracy/throughput trade-off of sampling), scores every
//! point, and cuts at the target percentile of the observed scores.

use crate::threshold::StaticThreshold;
use crate::{Classification, Label};
use mb_stats::{Estimator, Result, StatsError};

/// Configuration for the batch classifier.
#[derive(Debug, Clone, Copy)]
pub struct BatchClassifierConfig {
    /// Percentile of scores above which a point is an outlier (paper default
    /// 0.99, i.e. "target outlier percentile of 1%").
    pub target_percentile: f64,
    /// Optional cap on the number of points used for training. `None` trains
    /// on the full batch; `Some(k)` trains on an evenly strided sample of at
    /// most `k` points (Figure 9's "operating on samples").
    pub training_sample_size: Option<usize>,
}

impl Default for BatchClassifierConfig {
    fn default() -> Self {
        BatchClassifierConfig {
            target_percentile: 0.99,
            training_sample_size: None,
        }
    }
}

/// A batch classifier wrapping any [`Estimator`] (MAD, MCD, Z-score, ...).
#[derive(Debug, Clone)]
pub struct BatchClassifier<E: Estimator> {
    estimator: E,
    config: BatchClassifierConfig,
    threshold: Option<StaticThreshold>,
}

impl<E: Estimator> BatchClassifier<E> {
    /// Wrap an (untrained) estimator.
    pub fn new(estimator: E, config: BatchClassifierConfig) -> Self {
        BatchClassifier {
            estimator,
            config,
            threshold: None,
        }
    }

    /// Train the estimator on `metrics` (honoring the configured training
    /// sample cap) without scoring or thresholding.
    ///
    /// This is the model half of [`classify_batch`], split out so a single
    /// globally fitted model can be broadcast to partitions: fit once, share
    /// the classifier by reference across threads (the trained estimators
    /// are plain data, hence `Sync`), and score with [`score_point`]. The
    /// threshold can then be derived from the *merged* partition scores and
    /// installed with [`set_threshold`].
    ///
    /// [`classify_batch`]: BatchClassifier::classify_batch
    /// [`score_point`]: BatchClassifier::score_point
    /// [`set_threshold`]: BatchClassifier::set_threshold
    pub fn fit(&mut self, metrics: &[Vec<f64>]) -> Result<()> {
        if metrics.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=1.0).contains(&self.config.target_percentile) {
            return Err(StatsError::InvalidParameter(format!(
                "target percentile must be in [0, 1], got {}",
                self.config.target_percentile
            )));
        }
        // Train, optionally on a strided subsample.
        match self.config.training_sample_size {
            Some(k) if k > 0 && k < metrics.len() => {
                let stride = metrics.len().div_ceil(k);
                let sample: Vec<Vec<f64>> = metrics.iter().step_by(stride).cloned().collect();
                self.estimator.train(&sample)
            }
            _ => self.estimator.train(metrics),
        }
    }

    /// Train the estimator on `rows` metric vectors stored contiguously
    /// (row-major, `dim` values per row), honoring the configured training
    /// sample cap. The strided subsample is the same rows [`fit`] would
    /// select (`stride = rows.div_ceil(k)`, every `stride`-th row), so a
    /// flat caller trains exactly the model the row-major path trains.
    ///
    /// [`fit`]: BatchClassifier::fit
    pub fn fit_flat(&mut self, flat: &[f64], dim: usize) -> Result<()> {
        if flat.is_empty() || dim == 0 || flat.len() % dim != 0 {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=1.0).contains(&self.config.target_percentile) {
            return Err(StatsError::InvalidParameter(format!(
                "target percentile must be in [0, 1], got {}",
                self.config.target_percentile
            )));
        }
        let rows = flat.len() / dim;
        // Stay flat end to end: a strided sample is copied into one
        // contiguous buffer, the full-batch case trains on the input
        // directly, and `train_flat` only materializes row vectors for
        // estimators without a columnar fit.
        match self.config.training_sample_size {
            Some(k) if k > 0 && k < rows => {
                let stride = rows.div_ceil(k);
                let mut sample: Vec<f64> = Vec::with_capacity(rows.div_ceil(stride) * dim);
                for row in flat.chunks_exact(dim).step_by(stride) {
                    sample.extend_from_slice(row);
                }
                self.estimator.train_flat(&sample, dim)
            }
            _ => self.estimator.train_flat(flat, dim),
        }
    }

    /// Score a single point with the fitted model, without classifying it
    /// (no threshold required, unlike [`classify_point`]).
    ///
    /// [`classify_point`]: BatchClassifier::classify_point
    pub fn score_point(&self, metrics: &[f64]) -> Result<f64> {
        self.estimator.score(metrics)
    }

    /// Score a batch of rows with the fitted model, one score per row in
    /// row order. Delegates to [`Estimator::score_batch`], so estimators
    /// with a parallel bulk path (MCD's pool-scattered distance pass) use
    /// it; the scores are exactly what row-by-row [`score_point`] returns,
    /// so partitioned callers can batch without perturbing results.
    ///
    /// [`score_point`]: BatchClassifier::score_point
    pub fn score_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>> {
        self.estimator.score_batch(rows)
    }

    /// Score `rows` metric vectors stored contiguously (row-major, `dim`
    /// values per row) through [`Estimator::score_batch_flat`] — the
    /// columnar twin of [`score_batch`], returning exactly the scores
    /// row-by-row [`score_point`] would.
    ///
    /// [`score_batch`]: BatchClassifier::score_batch
    /// [`score_point`]: BatchClassifier::score_point
    pub fn score_batch_flat(&self, flat: &[f64], dim: usize) -> Result<Vec<f64>> {
        self.estimator.score_batch_flat(flat, dim)
    }

    /// Train, threshold, score, and label a contiguous row-major metric
    /// buffer: the columnar twin of [`classify_batch`], producing identical
    /// classifications for the same rows.
    ///
    /// [`classify_batch`]: BatchClassifier::classify_batch
    pub fn classify_batch_flat(&mut self, flat: &[f64], dim: usize) -> Result<Vec<Classification>> {
        self.fit_flat(flat, dim)?;
        let scores: Vec<f64> = self.estimator.score_batch_flat(flat, dim)?;
        let threshold = StaticThreshold::from_scores(&scores, self.config.target_percentile)?;
        self.threshold = Some(threshold);
        Ok(scores
            .into_iter()
            .map(|score| threshold.classify(score))
            .collect())
    }

    /// Install an externally computed threshold — e.g. the global percentile
    /// cutoff of scores merged across partitions.
    pub fn set_threshold(&mut self, threshold: StaticThreshold) {
        self.threshold = Some(threshold);
    }

    /// Train the estimator and threshold, then score and label every point.
    ///
    /// Returns one [`Classification`] per input row, in input order.
    pub fn classify_batch(&mut self, metrics: &[Vec<f64>]) -> Result<Vec<Classification>> {
        self.fit(metrics)?;
        // Score everything through the estimator's bulk path (parallel for
        // MCD, a plain loop otherwise) — identical scores either way.
        let scores: Vec<f64> = self.estimator.score_batch(metrics)?;
        // Threshold at the target percentile of observed scores.
        let threshold = StaticThreshold::from_scores(&scores, self.config.target_percentile)?;
        self.threshold = Some(threshold);
        Ok(scores
            .into_iter()
            .map(|score| threshold.classify(score))
            .collect())
    }

    /// Score and label a single point using the model and threshold fitted by
    /// the last [`classify_batch`] call.
    ///
    /// [`classify_batch`]: BatchClassifier::classify_batch
    pub fn classify_point(&self, metrics: &[f64]) -> Result<Classification> {
        let threshold = self.threshold.ok_or(StatsError::NotTrained)?;
        let score = self.estimator.score(metrics)?;
        Ok(threshold.classify(score))
    }

    /// The trained threshold, if any.
    pub fn threshold(&self) -> Option<StaticThreshold> {
        self.threshold
    }

    /// Access the wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// Convenience: split classifications into (outlier indices, inlier indices).
    pub fn partition_indices(classifications: &[Classification]) -> (Vec<usize>, Vec<usize>) {
        let mut outliers = Vec::new();
        let mut inliers = Vec::new();
        for (idx, c) in classifications.iter().enumerate() {
            match c.label {
                Label::Outlier => outliers.push(idx),
                Label::Inlier => inliers.push(idx),
            }
        }
        (outliers, inliers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::mad::MadEstimator;
    use mb_stats::mcd::McdEstimator;
    use mb_stats::rand_ext::{normal, SplitMix64};

    #[test]
    fn empty_batch_is_rejected() {
        let mut c = BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
        assert!(matches!(
            c.classify_batch(&[]),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn flags_about_the_target_fraction() {
        let mut rng = SplitMix64::new(1);
        let metrics: Vec<Vec<f64>> = (0..10_000)
            .map(|_| vec![normal(&mut rng, 10.0, 2.0)])
            .collect();
        let mut c = BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
        let result = c.classify_batch(&metrics).unwrap();
        let outliers = result.iter().filter(|r| r.label.is_outlier()).count();
        let fraction = outliers as f64 / metrics.len() as f64;
        assert!((0.005..0.02).contains(&fraction), "fraction = {fraction}");
    }

    #[test]
    fn injected_anomalies_are_the_flagged_points() {
        let mut rng = SplitMix64::new(2);
        let mut metrics: Vec<Vec<f64>> = (0..5_000)
            .map(|_| vec![normal(&mut rng, 10.0, 1.0)])
            .collect();
        // 50 extreme points (1%) injected at known indices.
        for i in 0..50 {
            metrics[i * 100] = vec![normal(&mut rng, 100.0, 1.0)];
        }
        let mut c = BatchClassifier::new(
            MadEstimator::new(),
            BatchClassifierConfig {
                target_percentile: 0.99,
                training_sample_size: None,
            },
        );
        let result = c.classify_batch(&metrics).unwrap();
        let (outlier_idx, _) = BatchClassifier::<MadEstimator>::partition_indices(&result);
        // All injected indices must be flagged.
        for i in 0..50 {
            assert!(
                outlier_idx.contains(&(i * 100)),
                "injected anomaly {} not flagged",
                i * 100
            );
        }
    }

    #[test]
    fn multivariate_mcd_classification() {
        let mut rng = SplitMix64::new(3);
        let mut metrics: Vec<Vec<f64>> = (0..2_000)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 0.0, 1.0)])
            .collect();
        for i in 0..20 {
            metrics[i * 100] = vec![50.0, 50.0];
        }
        let mut c = BatchClassifier::new(
            McdEstimator::with_defaults(),
            BatchClassifierConfig::default(),
        );
        let result = c.classify_batch(&metrics).unwrap();
        for i in 0..20 {
            assert!(result[i * 100].label.is_outlier());
        }
    }

    #[test]
    fn training_on_sample_still_classifies_well() {
        let mut rng = SplitMix64::new(4);
        let mut metrics: Vec<Vec<f64>> = (0..20_000)
            .map(|_| vec![normal(&mut rng, 10.0, 1.0)])
            .collect();
        for i in 0..200 {
            metrics[i * 100] = vec![normal(&mut rng, 70.0, 1.0)];
        }
        let mut c = BatchClassifier::new(
            MadEstimator::new(),
            BatchClassifierConfig {
                target_percentile: 0.99,
                training_sample_size: Some(500),
            },
        );
        let result = c.classify_batch(&metrics).unwrap();
        let flagged: Vec<usize> = result
            .iter()
            .enumerate()
            .filter(|(_, r)| r.label.is_outlier())
            .map(|(i, _)| i)
            .collect();
        let injected_found = (0..200).filter(|i| flagged.contains(&(i * 100))).count();
        assert!(injected_found >= 190, "found only {injected_found} of 200");
    }

    #[test]
    fn fit_then_broadcast_matches_classify_batch() {
        // The fit/score/set_threshold decomposition must reproduce
        // classify_batch exactly: same model, same scores, same labels.
        let mut rng = SplitMix64::new(6);
        let mut metrics: Vec<Vec<f64>> = (0..10_000)
            .map(|_| vec![normal(&mut rng, 10.0, 1.0)])
            .collect();
        for i in 0..100 {
            metrics[i * 100] = vec![normal(&mut rng, 60.0, 1.0)];
        }
        let config = BatchClassifierConfig::default();
        let mut reference = BatchClassifier::new(MadEstimator::new(), config);
        let expected = reference.classify_batch(&metrics).unwrap();

        let mut shared = BatchClassifier::new(MadEstimator::new(), config);
        shared.fit(&metrics).unwrap();
        // "Partitions" score against the shared model by reference.
        let shared_ref = &shared;
        let scores: Vec<f64> = metrics
            .iter()
            .map(|row| shared_ref.score_point(row).unwrap())
            .collect();
        let threshold =
            StaticThreshold::from_scores(&scores, config.target_percentile).unwrap();
        shared.set_threshold(threshold);
        assert_eq!(
            shared.threshold().unwrap().cutoff(),
            reference.threshold().unwrap().cutoff()
        );
        for (row, expected) in metrics.iter().zip(expected.iter()) {
            let got = shared.classify_point(row).unwrap();
            assert_eq!(got.label, expected.label);
            assert_eq!(got.score, expected.score);
        }
    }

    #[test]
    fn score_batch_matches_score_point_for_mcd() {
        // The bulk path runs MCD's parallel distance pass; partitioned
        // executors rely on it returning exactly the per-point scores.
        let mut rng = SplitMix64::new(7);
        let metrics: Vec<Vec<f64>> = (0..4_000)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0), normal(&mut rng, 2.0, 1.0)])
            .collect();
        let mut c = BatchClassifier::new(
            McdEstimator::with_defaults(),
            BatchClassifierConfig::default(),
        );
        c.fit(&metrics).unwrap();
        let batch = c.score_batch(&metrics).unwrap();
        assert_eq!(batch.len(), metrics.len());
        for (row, &s) in metrics.iter().zip(batch.iter()) {
            assert_eq!(s, c.score_point(row).unwrap());
        }
    }

    #[test]
    fn classify_batch_flat_is_exactly_classify_batch() {
        // Including the strided training subsample: the flat path must pick
        // the same sample rows, hence the same model, scores, and labels.
        let mut rng = SplitMix64::new(8);
        let mut metrics: Vec<Vec<f64>> = (0..9_973)
            .map(|_| vec![normal(&mut rng, 10.0, 1.0)])
            .collect();
        for i in 0..90 {
            metrics[i * 110] = vec![normal(&mut rng, 70.0, 1.0)];
        }
        let config = BatchClassifierConfig {
            target_percentile: 0.99,
            training_sample_size: Some(701),
        };
        let mut rowwise = BatchClassifier::new(MadEstimator::new(), config);
        let expected = rowwise.classify_batch(&metrics).unwrap();

        let flat: Vec<f64> = metrics.iter().flatten().copied().collect();
        let mut columnar = BatchClassifier::new(MadEstimator::new(), config);
        let got = columnar.classify_batch_flat(&flat, 1).unwrap();

        assert_eq!(expected.len(), got.len());
        for (e, g) in expected.iter().zip(got.iter()) {
            assert_eq!(e.label, g.label);
            assert_eq!(e.score, g.score);
        }
        assert_eq!(
            rowwise.threshold().unwrap().cutoff(),
            columnar.threshold().unwrap().cutoff()
        );
    }

    #[test]
    fn fit_rejects_empty_and_invalid_config() {
        let mut c = BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
        assert!(matches!(c.fit(&[]), Err(StatsError::EmptyInput)));
        let mut bad = BatchClassifier::new(
            MadEstimator::new(),
            BatchClassifierConfig {
                target_percentile: -1.0,
                training_sample_size: None,
            },
        );
        assert!(matches!(
            bad.fit(&[vec![1.0]]),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn classify_point_requires_prior_batch() {
        let c = BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
        assert_eq!(c.classify_point(&[1.0]), Err(StatsError::NotTrained));
    }

    #[test]
    fn classify_point_after_batch() {
        let mut rng = SplitMix64::new(5);
        let metrics: Vec<Vec<f64>> = (0..5_000)
            .map(|_| vec![normal(&mut rng, 0.0, 1.0)])
            .collect();
        let mut c = BatchClassifier::new(MadEstimator::new(), BatchClassifierConfig::default());
        c.classify_batch(&metrics).unwrap();
        assert_eq!(c.classify_point(&[0.0]).unwrap().label, Label::Inlier);
        assert_eq!(c.classify_point(&[100.0]).unwrap().label, Label::Outlier);
    }

    #[test]
    fn invalid_percentile_rejected() {
        let mut c = BatchClassifier::new(
            MadEstimator::new(),
            BatchClassifierConfig {
                target_percentile: 2.0,
                training_sample_size: None,
            },
        );
        assert!(matches!(
            c.classify_batch(&[vec![1.0], vec![2.0]]),
            Err(StatsError::InvalidParameter(_))
        ));
    }
}
