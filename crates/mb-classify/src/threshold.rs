//! Score thresholds: turning outlier scores into labels.
//!
//! MDP classifies the most extreme points by score percentile (Section 4.1):
//! "points with scores above the percentile-based cutoff are classified as
//! outliers". In one-shot mode the cutoff is computed exactly over the batch
//! of scores; in streaming mode it is maintained approximately over an ADR
//! sample of recent scores, with a binomial drift check (Section 4.2,
//! footnote 4) that tells the caller when the threshold should be recomputed.

use crate::{Classification, Label};
use mb_sketch::quantile::AdrQuantileEstimator;
use mb_stats::confidence::binomial_proportion_interval;
use mb_stats::univariate::quantile;
use mb_stats::Result;

/// Number of scores the streaming threshold must accumulate before it starts
/// labeling points as outliers; with fewer samples the percentile estimate is
/// too noisy to act on, so everything is conservatively labeled an inlier.
const MIN_WARMUP_SCORES: usize = 100;

/// A fixed threshold: scores at or above it are outliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticThreshold {
    cutoff: f64,
}

impl StaticThreshold {
    /// Create a threshold at the given cutoff.
    pub fn new(cutoff: f64) -> Self {
        StaticThreshold { cutoff }
    }

    /// Compute the exact `percentile` (in `[0,1]`) cutoff of a batch of scores.
    pub fn from_scores(scores: &[f64], percentile: f64) -> Result<Self> {
        let cutoff = quantile(scores, percentile)?;
        Ok(StaticThreshold { cutoff })
    }

    /// The cutoff value.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Classify a score against this threshold.
    pub fn classify(&self, score: f64) -> Classification {
        Classification {
            score,
            label: Label::from_outlier_flag(score >= self.cutoff),
        }
    }
}

/// A streaming percentile threshold maintained over an ADR of scores.
///
/// Also tracks how many of the recently observed scores were classified as
/// outliers so that quantile drift can be detected: if the observed outlier
/// fraction's confidence interval excludes the target `1 - percentile`, the
/// threshold is stale.
#[derive(Debug, Clone)]
pub struct StreamingPercentileThreshold {
    estimator: AdrQuantileEstimator,
    percentile: f64,
    recent_total: u64,
    recent_outliers: u64,
}

impl StreamingPercentileThreshold {
    /// Create a streaming threshold at the given `percentile ∈ [0, 1]`.
    ///
    /// `capacity`, `decay_rate`, `refresh_period`, and `seed` configure the
    /// underlying score reservoir (see [`AdrQuantileEstimator`]).
    pub fn new(
        percentile: f64,
        capacity: usize,
        decay_rate: f64,
        refresh_period: u64,
        seed: u64,
    ) -> Result<Self> {
        Ok(StreamingPercentileThreshold {
            estimator: AdrQuantileEstimator::new(
                percentile,
                capacity,
                decay_rate,
                refresh_period,
                seed,
            )?,
            percentile,
            recent_total: 0,
            recent_outliers: 0,
        })
    }

    /// Observe a score and classify it against the current threshold.
    ///
    /// Until `MIN_WARMUP_SCORES` scores have been observed the percentile
    /// estimate is too noisy to act on, so every point is conservatively
    /// labeled an inlier; the threshold is (re)computed once warm-up ends.
    pub fn observe_and_classify(&mut self, score: f64) -> Classification {
        self.estimator.observe(score);
        if self.estimator.sample_size() < MIN_WARMUP_SCORES {
            self.recent_total += 1;
            return Classification {
                score,
                label: Label::Inlier,
            };
        }
        if self.estimator.sample_size() == MIN_WARMUP_SCORES {
            // First usable sample: compute the initial cutoff now rather than
            // waiting out the refresh period.
            self.estimator.refresh();
        }
        let label = match self.estimator.threshold() {
            Ok(cutoff) => Label::from_outlier_flag(score >= cutoff),
            Err(_) => Label::Inlier,
        };
        self.recent_total += 1;
        if label.is_outlier() {
            self.recent_outliers += 1;
        }
        Classification { score, label }
    }

    /// The current cutoff, if one can be computed.
    pub fn cutoff(&mut self) -> Result<f64> {
        self.estimator.threshold()
    }

    /// Decay the underlying score reservoir (called at period boundaries).
    pub fn decay(&mut self) {
        self.estimator.decay();
    }

    /// Force a threshold recomputation from the current reservoir.
    pub fn refresh(&mut self) {
        self.estimator.refresh();
    }

    /// The target percentile.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }

    /// Detect quantile drift: returns `true` when the observed outlier rate
    /// since the last [`reset_drift_window`] differs significantly (at the
    /// given confidence level) from the target rate `1 - percentile`.
    ///
    /// [`reset_drift_window`]: StreamingPercentileThreshold::reset_drift_window
    pub fn drift_detected(&self, confidence: f64) -> Result<bool> {
        if self.recent_total < 100 {
            // Not enough evidence either way.
            return Ok(false);
        }
        let interval =
            binomial_proportion_interval(self.recent_outliers, self.recent_total, confidence)?;
        let target = 1.0 - self.percentile;
        Ok(!interval.contains(target))
    }

    /// Reset the drift-detection counters (after acting on a drift signal).
    pub fn reset_drift_window(&mut self) {
        self.recent_total = 0;
        self.recent_outliers = 0;
    }

    /// Observed outlier fraction since the last drift-window reset.
    pub fn observed_outlier_fraction(&self) -> f64 {
        if self.recent_total == 0 {
            0.0
        } else {
            self.recent_outliers as f64 / self.recent_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_stats::rand_ext::{normal, SplitMix64};
    use mb_stats::StatsError;

    #[test]
    fn static_threshold_classifies() {
        let t = StaticThreshold::new(3.0);
        assert_eq!(t.classify(2.9).label, Label::Inlier);
        assert_eq!(t.classify(3.0).label, Label::Outlier);
        assert_eq!(t.classify(100.0).label, Label::Outlier);
        assert_eq!(t.classify(100.0).score, 100.0);
    }

    #[test]
    fn static_threshold_from_scores_hits_percentile() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let t = StaticThreshold::from_scores(&scores, 0.99).unwrap();
        assert!((t.cutoff() - 989.01).abs() < 1.0);
        let outliers = scores.iter().filter(|&&s| t.classify(s).label.is_outlier()).count();
        assert!((10..=11).contains(&outliers));
    }

    #[test]
    fn static_threshold_empty_scores_errors() {
        assert!(matches!(
            StaticThreshold::from_scores(&[], 0.99),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn streaming_threshold_flags_about_one_percent() {
        let mut t = StreamingPercentileThreshold::new(0.99, 20_000, 0.0, 5_000, 1).unwrap();
        let mut rng = SplitMix64::new(3);
        let mut outliers = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let c = t.observe_and_classify(normal(&mut rng, 0.0, 1.0).abs());
            if c.label.is_outlier() {
                outliers += 1;
            }
        }
        let fraction = outliers as f64 / n as f64;
        assert!(
            (0.005..0.02).contains(&fraction),
            "outlier fraction was {fraction}"
        );
    }

    #[test]
    fn streaming_threshold_starts_conservative() {
        let mut t = StreamingPercentileThreshold::new(0.99, 100, 0.0, 1000, 1).unwrap();
        // The very first observation has no threshold yet -> inlier.
        let c = t.observe_and_classify(1_000_000.0);
        assert_eq!(c.label, Label::Inlier);
    }

    #[test]
    fn drift_detection_fires_after_distribution_shift() {
        let mut t = StreamingPercentileThreshold::new(0.99, 5_000, 0.0, 1_000_000, 7).unwrap();
        let mut rng = SplitMix64::new(9);
        // Train the threshold on scores ~ |N(0,1)|.
        for _ in 0..20_000 {
            t.observe_and_classify(normal(&mut rng, 0.0, 1.0).abs());
        }
        t.refresh();
        t.reset_drift_window();
        assert!(!t.drift_detected(0.95).unwrap());
        // Shift: scores now ten times larger, so nearly everything exceeds the
        // stale cutoff. Use a huge refresh period so the cutoff stays stale.
        for _ in 0..5_000 {
            t.observe_and_classify(normal(&mut rng, 10.0, 1.0).abs());
        }
        assert!(t.drift_detected(0.95).unwrap());
        assert!(t.observed_outlier_fraction() > 0.5);
        t.reset_drift_window();
        assert!(!t.drift_detected(0.95).unwrap());
    }

    #[test]
    fn invalid_percentile_rejected() {
        assert!(StreamingPercentileThreshold::new(1.5, 100, 0.0, 10, 1).is_err());
    }
}
