//! The JSON-lines protocol end to end, in process: requests as raw text
//! lines, responses parsed and checked — including the typed unknown-field
//! errors the protocol promises.

use macrobase_core::query::{Executor, MdpQuery};
use macrobase_core::types::Point;
use macrobase_core::wire::{points_to_json, report_to_json};
use mb_serve::{handle_line, serve_loop, ServeConfig, Server};
use serde_json::Value;

fn corpus() -> Vec<Point> {
    let mut points: Vec<Point> = (0..3_000)
        .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 20)))
        .collect();
    for i in 0..30 {
        points[i * 100] = Point::simple(90.0, "device_13");
    }
    points
}

fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value.as_object().and_then(|m| m.get(key))
}

fn get_str<'a>(value: &'a Value, key: &str) -> Option<&'a str> {
    get(value, key).and_then(|v| v.as_str())
}

fn get_f64(value: &Value, key: &str) -> Option<f64> {
    get(value, key).and_then(|v| v.as_f64())
}

fn request(server: &Server, line: &str) -> Value {
    serde_json::from_str(&handle_line(server, line)).expect("response must be valid JSON")
}

fn assert_ok(response: &Value) -> &Value {
    assert_eq!(
        get(response, "ok"),
        Some(&Value::Bool(true)),
        "expected ok response, got {response}"
    );
    response
}

fn error_kind(response: &Value) -> String {
    assert_eq!(get(response, "ok"), Some(&Value::Bool(false)), "{response}");
    get(response, "error")
        .and_then(|e| get(e, "kind"))
        .and_then(|k| k.as_str())
        .expect("error responses carry error.kind")
        .to_string()
}

#[test]
fn submit_poll_close_round_trip_preserves_report_bytes() {
    let points = corpus();
    let standalone = MdpQuery::with_defaults()
        .execute(&Executor::OneShot, &points)
        .unwrap();
    let server = Server::start(ServeConfig::default());

    let submit = format!(
        r#"{{"op":"submit","id":"w1","priority":"high","executor":{{"mode":"one_shot"}},"points":{}}}"#,
        points_to_json(&points)
    );
    let response = request(&server, &submit);
    assert_ok(&response);
    assert_eq!(get_str(&response, "state"), Some("queued"));

    let response = request(&server, r#"{"op":"poll","id":"w1","wait_ms":120000}"#);
    assert_ok(&response);
    assert_eq!(get_str(&response, "state"), Some("done"));
    assert_eq!(get_f64(&response, "model_epoch"), Some(1.0));
    assert_eq!(
        get_str(&response, "model_cache"),
        Some("miss")
    );
    // The wire report is the exact standalone encoding, byte for byte.
    assert_eq!(
        get(&response, "report").unwrap().to_string(),
        report_to_json(&standalone).to_string()
    );

    let response = request(&server, r#"{"op":"close","id":"w1"}"#);
    assert_ok(&response);
    assert_eq!(get_str(&response, "closed"), Some("job"));

    let stats = request(&server, r#"{"op":"stats"}"#);
    assert_ok(&stats);
    let counters = get(&stats, "counters").unwrap();
    assert_eq!(
        get_f64(counters, "jobs_submitted"),
        Some(1.0)
    );
    assert_eq!(
        get_f64(counters, "model_trainings"),
        Some(1.0)
    );
    assert!(get_f64(&stats, "uptime_ns").is_some());
}

#[test]
fn streaming_session_over_the_wire() {
    let server = Server::start(ServeConfig::default());
    let response = request(
        &server,
        r#"{"op":"submit","id":"s1","executor":{"mode":"streaming","reservoir_size":2000,"retrain_period":1000}}"#,
    );
    assert_ok(&response);
    assert_eq!(get_str(&response, "state"), Some("session"));

    let batch: Vec<Point> = (0..1_500)
        .map(|i| Point::simple(10.0 + (i % 7) as f64, format!("d{}", i % 10)))
        .collect();
    let feed = format!(
        r#"{{"op":"feed","id":"s1","points":{}}}"#,
        points_to_json(&batch)
    );
    let response = request(&server, &feed);
    assert_ok(&response);
    assert_eq!(get_f64(&response, "points"), Some(1_500.0));
    assert_eq!(
        get_f64(&response, "total_points"),
        Some(1_500.0)
    );

    // Polling a session renders a snapshot report.
    let response = request(&server, r#"{"op":"poll","id":"s1"}"#);
    assert_ok(&response);
    assert_eq!(get_str(&response, "state"), Some("session"));
    let report = get(&response, "report").unwrap();
    assert_eq!(
        get_f64(report, "num_points"),
        Some(1_500.0)
    );

    let response = request(&server, r#"{"op":"close","id":"s1"}"#);
    assert_ok(&response);
    assert_eq!(
        get_str(&response, "closed"),
        Some("session")
    );
}

#[test]
fn protocol_typos_and_misuse_are_typed_errors() {
    let server = Server::start(ServeConfig::default());

    // Unknown top-level key (misspelled "priority").
    let response = request(
        &server,
        r#"{"op":"submit","id":"x","priorty":"high","points":[]}"#,
    );
    assert_eq!(error_kind(&response), "protocol");
    assert!(get_str(get(&response, "error").unwrap(), "message")
        .unwrap()
        .contains("priorty"));

    // Unknown op.
    let response = request(&server, r#"{"op":"sumbit","id":"x"}"#);
    assert_eq!(error_kind(&response), "unknown_op");

    // Malformed JSON.
    let response = request(&server, "{nope");
    assert_eq!(error_kind(&response), "malformed");

    // Misspelled analysis knob travels through the core codec.
    let response = request(
        &server,
        r#"{"op":"submit","id":"x","analysis":{"target_percentil":0.9},"points":[]}"#,
    );
    assert_eq!(error_kind(&response), "protocol");
    assert!(get_str(get(&response, "error").unwrap(), "message")
        .unwrap()
        .contains("target_percentil"));

    // Batch submit without points.
    let response = request(&server, r#"{"op":"submit","id":"x"}"#);
    assert_eq!(error_kind(&response), "protocol");

    // Unknown id.
    let response = request(&server, r#"{"op":"poll","id":"ghost"}"#);
    assert_eq!(error_kind(&response), "unknown_id");

    // Feeding a batch job id that does not exist.
    let response = request(&server, r#"{"op":"feed","id":"ghost","points":[]}"#);
    assert_eq!(error_kind(&response), "unknown_id");
}

#[test]
fn serve_loop_answers_line_by_line_until_eof() {
    let server = Server::start(ServeConfig::default());
    let input = b"{\"op\":\"stats\"}\n\n{\"op\":\"poll\",\"id\":\"nope\"}\n".to_vec();
    let mut output = Vec::new();
    serve_loop(&server, &input[..], &mut output).unwrap();
    let lines: Vec<&str> = std::str::from_utf8(&output)
        .unwrap()
        .lines()
        .collect();
    assert_eq!(lines.len(), 2, "one response per non-empty request line");
    let stats: Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(get(&stats, "ok"), Some(&Value::Bool(true)));
    let err: Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(error_kind(&err), "unknown_id");
}
