//! The mb-serve acceptance criteria: concurrent submissions sharing one
//! fingerprint train once, report byte-identically to standalone runs, and
//! retrains publish new epochs without touching in-flight readers.

use macrobase_core::query::{Executor, MdpQuery};
use macrobase_core::types::Point;
use macrobase_core::wire::report_to_string;
use mb_serve::{CacheOutcome, JobStatus, Priority, QuerySpec, ServeConfig, Server};
use std::time::{Duration, Instant};

fn corpus() -> Vec<Point> {
    let mut points: Vec<Point> = (0..5_000)
        .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 20)))
        .collect();
    for i in 0..50 {
        points[i * 100] = Point::simple(90.0, "device_13");
    }
    points
}

fn spec() -> QuerySpec {
    QuerySpec {
        analysis: Default::default(),
        executor: Executor::OneShot,
    }
}

fn wait_done(server: &Server, id: &str) -> mb_serve::JobResult {
    match server.poll(id, Some(Duration::from_secs(120))).unwrap() {
        JobStatus::Done(result) => *result,
        other => panic!("job {id} did not finish: {other:?}"),
    }
}

#[test]
fn concurrent_queries_share_one_model_and_reports_stay_byte_identical() {
    let points = corpus();
    let mut standalone_query = MdpQuery::with_defaults();
    let standalone = standalone_query.execute(&Executor::OneShot, &points).unwrap();
    let standalone_bytes = report_to_string(&standalone);

    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });

    // N = 4 concurrent submissions with the same AnalysisConfig fingerprint.
    for i in 0..4 {
        server
            .submit(&format!("q{i}"), spec(), points.clone(), Priority::Normal)
            .unwrap();
    }
    let mut outcomes = Vec::new();
    for i in 0..4 {
        let result = wait_done(&server, &format!("q{i}"));
        // (a) byte-identical to the standalone one-shot run.
        assert_eq!(report_to_string(&result.report), standalone_bytes);
        // Provenance: every report scored against epoch 1.
        assert_eq!(result.model_epoch, Some(1));
        outcomes.push(result.cache.unwrap());
    }

    // (b) the model trained exactly once: one miss, three hits.
    let stats = server.stats();
    assert_eq!(stats.counter("model_trainings"), 1);
    assert_eq!(stats.counter("cache_misses"), 1);
    assert_eq!(stats.counter("cache_hits"), 3);
    assert_eq!(
        outcomes.iter().filter(|o| **o == CacheOutcome::Miss).count(),
        1
    );
    assert_eq!(stats.counter("jobs_completed"), 4);

    // (c) a background retrain publishes epoch 2 while holders of the old
    // snapshot keep reading epoch 1.
    let old = server.model_snapshot("q0").unwrap();
    assert_eq!(old.epoch, 1);
    server.retrain("q0").unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    while server.stats().counter("epochs_published") < 2 {
        assert!(Instant::now() < deadline, "retrain never published");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The held snapshot is immutable — still epoch 1 — and still produces
    // the identical report (training is deterministic over the same data).
    assert_eq!(old.epoch, 1);
    let via_old = standalone_query.execute_with_model(&old.model, &points).unwrap();
    assert_eq!(report_to_string(&via_old), standalone_bytes);

    // A new subscriber reads the new epoch; its report is still
    // byte-identical because the training data did not change.
    server
        .submit("q4", spec(), points.clone(), Priority::Normal)
        .unwrap();
    let result = wait_done(&server, "q4");
    assert_eq!(result.model_epoch, Some(2));
    assert_eq!(result.cache, Some(CacheOutcome::Hit));
    assert_eq!(report_to_string(&result.report), standalone_bytes);
}

#[test]
fn partitioned_and_streaming_submissions_match_their_standalone_runs() {
    let points = corpus();
    for executor in [
        Executor::Coordinated { partitions: 4 },
        Executor::NaivePartitioned { partitions: 2 },
        Executor::streaming(),
    ] {
        let standalone = MdpQuery::with_defaults()
            .execute(&executor, &points)
            .unwrap();
        let server = Server::start(ServeConfig::default());
        server
            .submit(
                "job",
                QuerySpec {
                    analysis: Default::default(),
                    executor: executor.clone(),
                },
                points.clone(),
                Priority::High,
            )
            .unwrap();
        let result = wait_done(&server, "job");
        assert_eq!(
            report_to_string(&result.report),
            report_to_string(&standalone),
            "{executor:?} diverged through the server"
        );
        // Non-one-shot executors bypass the cache: no provenance.
        assert_eq!(result.model_epoch, None);
        assert_eq!(result.cache, None);
    }
}

#[test]
fn session_lifecycle_create_feed_report_close_and_idle_expiry() {
    let server = Server::start(ServeConfig {
        session_idle: Duration::from_millis(40),
        ..ServeConfig::default()
    });
    let streaming_spec = QuerySpec {
        analysis: Default::default(),
        executor: Executor::streaming(),
    };
    server.open_session("s1", streaming_spec.clone()).unwrap();

    let batch: Vec<Point> = (0..2_000)
        .map(|i| Point::simple(10.0 + (i % 7) as f64, format!("d{}", i % 10)))
        .collect();
    let summary = server.feed("s1", &batch).unwrap();
    assert_eq!(summary.points, 2_000);
    assert_eq!(summary.total_points, 2_000);
    let report = server.session_report("s1").unwrap();
    assert_eq!(report.num_points, 2_000);

    // Close is explicit and counted.
    assert_eq!(server.close("s1"), Ok(mb_serve::Closed::Session));
    assert!(server.feed("s1", &batch).is_err());

    // Idle expiry: an untouched session is swept after the idle window.
    server.open_session("s2", streaming_spec).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(server.sweep_idle_sessions(), 1);
    let stats = server.stats();
    assert_eq!(stats.counter("sessions_opened"), 2);
    assert_eq!(stats.counter("sessions_closed"), 1);
    assert_eq!(stats.counter("sessions_expired"), 1);
}

#[test]
fn duplicate_ids_and_unknown_ids_are_typed_errors() {
    let server = Server::start(ServeConfig::default());
    let points = corpus();
    server
        .submit("dup", spec(), points.clone(), Priority::Normal)
        .unwrap();
    let err = server
        .submit("dup", spec(), points, Priority::Normal)
        .unwrap_err();
    assert!(matches!(err, mb_serve::ServeError::DuplicateId(_)));
    let err = server.poll("missing", None).unwrap_err();
    assert!(matches!(err, mb_serve::ServeError::UnknownId(_)));
    let err = server.close("missing").unwrap_err();
    assert!(matches!(err, mb_serve::ServeError::UnknownId(_)));

    // Closing a finished job forgets it.
    wait_done(&server, "dup");
    assert_eq!(server.close("dup"), Ok(mb_serve::Closed::Job));
    assert!(matches!(
        server.poll("dup", None),
        Err(mb_serve::ServeError::UnknownId(_))
    ));
}
