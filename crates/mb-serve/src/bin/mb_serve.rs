//! The `mb_serve` binary: a resident MacroBase server speaking the
//! JSON-lines protocol over stdin/stdout.
//!
//! ```text
//! mb_serve [--threads N] [--workers N] [--queue N] [--session-idle-ms N]
//! ```
//!
//! `--threads` sizes the process-wide work-stealing pool every query shares
//! (one-shot: set before anything touches the pool); `--workers` is the
//! number of concurrently executing queries; `--queue` bounds admission;
//! `--session-idle-ms` expires idle streaming sessions. Exits 0 on EOF.

use mb_serve::{serve_loop, ServeConfig, Server};
use std::time::Duration;

fn arg_usize(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("error: {name} needs an unsigned integer argument");
                    std::process::exit(2);
                });
        }
    }
    default
}

fn main() {
    let threads = arg_usize("--threads", 0);
    if threads > 0 {
        // The server owns the pool for the process lifetime; surfacing the
        // one-shot violation beats silently running at the wrong width.
        if let Err(e) = mb_pool::configure_global_threads(threads) {
            eprintln!("warning: --threads {threads} ignored: {e}");
        }
    }
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        workers: arg_usize("--workers", defaults.workers),
        max_queue: arg_usize("--queue", defaults.max_queue),
        session_idle: Duration::from_millis(arg_usize(
            "--session-idle-ms",
            defaults.session_idle.as_millis() as usize,
        ) as u64),
    };
    let server = Server::start(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    if let Err(e) = serve_loop(&server, stdin.lock(), stdout.lock()) {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
}
