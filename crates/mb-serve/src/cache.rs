//! The shared, epoch-versioned model cache.
//!
//! One slot per [`Fingerprint`]. The first requester trains the model (off
//! the slot lock — training can take arbitrarily long) and publishes an
//! immutable [`ModelSnapshot`] at epoch 1; concurrent requesters for the
//! same fingerprint block on the slot's condvar and then share the same
//! `Arc`. A retrain publishes the *next* epoch by swapping the slot's
//! `Arc` — readers holding the previous snapshot are never stalled or
//! invalidated, the multiversion discipline (readers against an immutable
//! snapshot, writers installing the next one) that keeps concurrency from
//! ever changing a report.

use crate::fingerprint::Fingerprint;
use macrobase_core::executor::FittedModel;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// An immutable fitted model stamped with the epoch that published it.
/// Everything a scorer needs is frozen at publication: epochs never mutate.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Publication epoch, starting at 1 for the first training.
    pub epoch: u64,
    /// The fitted classifier + threshold.
    pub model: FittedModel,
}

/// How a cache lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// This requester trained the model (or arrived while no model existed
    /// and won the training slot).
    Miss,
    /// An already-published snapshot was reused.
    Hit,
}

enum SlotState {
    /// A requester is training; everyone else waits on the condvar.
    Training,
    /// Published and shareable. Replaced wholesale on retrain.
    Ready(Arc<ModelSnapshot>),
    /// Training failed. Sticky: the same inputs would fail the same way
    /// (training is deterministic), so repeat requesters get the same error
    /// without re-paying for the attempt.
    Failed(String),
}

struct Slot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

/// The cache proper: fingerprint-keyed slots.
pub struct ModelCache {
    slots: Mutex<HashMap<Fingerprint, Arc<Slot>>>,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        ModelCache {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Fetch the current snapshot for `fingerprint`, training it with
    /// `train` if no slot exists yet. Exactly one caller per fingerprint
    /// runs `train`; everyone else blocks until publication and shares the
    /// result.
    pub fn get_or_train<F>(
        &self,
        fingerprint: Fingerprint,
        train: F,
    ) -> Result<(Arc<ModelSnapshot>, CacheOutcome), String>
    where
        F: FnOnce() -> Result<FittedModel, String>,
    {
        let (slot, trainer) = {
            let mut slots = self.slots.lock().expect("model cache poisoned");
            match slots.get(&fingerprint) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Training),
                        cond: Condvar::new(),
                    });
                    slots.insert(fingerprint, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if trainer {
            // Train off every lock: other fingerprints stay available and
            // same-fingerprint requesters queue on the condvar.
            let outcome = train();
            let mut state = slot.state.lock().expect("model slot poisoned");
            let result = match outcome {
                Ok(model) => {
                    let snapshot = Arc::new(ModelSnapshot { epoch: 1, model });
                    *state = SlotState::Ready(Arc::clone(&snapshot));
                    Ok((snapshot, CacheOutcome::Miss))
                }
                Err(message) => {
                    *state = SlotState::Failed(message.clone());
                    Err(message)
                }
            };
            slot.cond.notify_all();
            return result;
        }

        let mut state = slot.state.lock().expect("model slot poisoned");
        loop {
            match &*state {
                SlotState::Ready(snapshot) => {
                    return Ok((Arc::clone(snapshot), CacheOutcome::Hit));
                }
                SlotState::Failed(message) => return Err(message.clone()),
                SlotState::Training => {
                    state = slot
                        .cond
                        .wait(state)
                        .expect("model slot poisoned");
                }
            }
        }
    }

    /// Current snapshot for `fingerprint`, if one has been published.
    /// Never blocks on an in-flight training.
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Arc<ModelSnapshot>> {
        let slot = {
            let slots = self.slots.lock().expect("model cache poisoned");
            slots.get(&fingerprint).map(Arc::clone)?
        };
        let state = slot.state.lock().expect("model slot poisoned");
        match &*state {
            SlotState::Ready(snapshot) => Some(Arc::clone(snapshot)),
            _ => None,
        }
    }

    /// Train the next epoch for an already-published fingerprint and swap
    /// it in. Readers holding the previous `Arc` are untouched; requesters
    /// arriving after the swap get the new epoch. Returns the published
    /// epoch.
    pub fn retrain<F>(&self, fingerprint: Fingerprint, train: F) -> Result<u64, String>
    where
        F: FnOnce() -> Result<FittedModel, String>,
    {
        let slot = {
            let slots = self.slots.lock().expect("model cache poisoned");
            slots
                .get(&fingerprint)
                .map(Arc::clone)
                .ok_or_else(|| "no model published for this fingerprint".to_string())?
        };
        let current_epoch = {
            let state = slot.state.lock().expect("model slot poisoned");
            match &*state {
                SlotState::Ready(snapshot) => snapshot.epoch,
                SlotState::Training => {
                    return Err("model is still training its first epoch".to_string())
                }
                SlotState::Failed(message) => return Err(message.clone()),
            }
        };
        // Train with no lock held: in-flight scorers keep reading the
        // current snapshot for the entire duration.
        let model = train()?;
        let mut state = slot.state.lock().expect("model slot poisoned");
        let epoch = match &*state {
            // Concurrent retrains may have advanced the epoch while this
            // one trained; publish after the newest.
            SlotState::Ready(snapshot) => snapshot.epoch.max(current_epoch) + 1,
            _ => current_epoch + 1,
        };
        *state = SlotState::Ready(Arc::new(ModelSnapshot { epoch, model }));
        slot.cond.notify_all();
        Ok(epoch)
    }
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macrobase_core::query::MdpQuery;
    use macrobase_core::types::Point;

    fn training_batch() -> Vec<Point> {
        (0..500)
            .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("d{}", i % 10)))
            .collect()
    }

    fn fingerprint_and_model() -> (Fingerprint, Vec<Point>) {
        let points = training_batch();
        let query = MdpQuery::with_defaults();
        let fp = Fingerprint::compute(query.analysis(), &points);
        (fp, points)
    }

    #[test]
    fn first_requester_trains_and_later_requesters_hit() {
        let cache = ModelCache::new();
        let (fp, points) = fingerprint_and_model();
        let query = MdpQuery::with_defaults();

        let (first, outcome) = cache
            .get_or_train(fp, || query.train(&points).map_err(|e| e.to_string()))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(first.epoch, 1);

        let (second, outcome) = cache
            .get_or_train(fp, || panic!("must not retrain a cached fingerprint"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn retrain_publishes_the_next_epoch_without_touching_old_readers() {
        let cache = ModelCache::new();
        let (fp, points) = fingerprint_and_model();
        let query = MdpQuery::with_defaults();

        let (old, _) = cache
            .get_or_train(fp, || query.train(&points).map_err(|e| e.to_string()))
            .unwrap();
        let epoch = cache
            .retrain(fp, || query.train(&points).map_err(|e| e.to_string()))
            .unwrap();
        assert_eq!(epoch, 2);
        // The held snapshot is immutable: still epoch 1.
        assert_eq!(old.epoch, 1);
        // New requesters see the new epoch.
        let current = cache.peek(fp).unwrap();
        assert_eq!(current.epoch, 2);
        assert!(!Arc::ptr_eq(&old, &current));
    }

    #[test]
    fn training_failures_are_sticky_and_typed() {
        let cache = ModelCache::new();
        let (fp, _) = fingerprint_and_model();
        let err = cache
            .get_or_train(fp, || Err::<FittedModel, _>("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        let err = cache
            .get_or_train(fp, || panic!("failure is sticky; no second attempt"))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.peek(fp).is_none());
    }
}
