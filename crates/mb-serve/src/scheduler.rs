//! The admission scheduler: a bounded three-class priority queue drained by
//! a small fixed set of worker threads.
//!
//! Workers only *sequence* jobs — each job's internal parallelism (model
//! training, partitioned scoring) still runs on the shared global
//! [`mb_pool`] the server configured at startup. That split keeps admission
//! control (how many queries run at once) independent of execution
//! parallelism (how many cores each query uses).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Admission priority class; higher classes always drain first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive interactive queries.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background work (retrains, batch sweeps).
    Low,
}

impl Priority {
    /// Parse the wire spelling (`high` / `normal` / `low`).
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// Typed rejection returned when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Saturated {
    /// Jobs currently queued (all classes).
    pub queued: usize,
    /// The configured admission limit.
    pub limit: usize,
}

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admission queue saturated ({} queued, limit {})",
            self.queued, self.limit
        )
    }
}

impl std::error::Error for Saturated {}

struct QueuedJob {
    id: String,
    work: Box<dyn FnOnce() + Send>,
}

#[derive(Default)]
struct Queues {
    high: VecDeque<QueuedJob>,
    normal: VecDeque<QueuedJob>,
    low: VecDeque<QueuedJob>,
    shutdown: bool,
}

impl Queues {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len() + self.low.len()
    }

    fn pop(&mut self) -> Option<QueuedJob> {
        self.high
            .pop_front()
            .or_else(|| self.normal.pop_front())
            .or_else(|| self.low.pop_front())
    }

    fn remove(&mut self, id: &str) -> bool {
        for queue in [&mut self.high, &mut self.normal, &mut self.low] {
            if let Some(pos) = queue.iter().position(|j| j.id == id) {
                queue.remove(pos);
                return true;
            }
        }
        false
    }
}

struct SchedulerShared {
    queues: Mutex<Queues>,
    cond: Condvar,
}

/// The scheduler: `submit` enqueues, worker threads drain in priority
/// order, `cancel` removes a not-yet-started job. Dropping the scheduler
/// stops the workers after their current job.
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    limit: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Start `workers` worker threads with an admission queue bounded at
    /// `limit` waiting jobs.
    pub fn start(workers: usize, limit: usize) -> Scheduler {
        let shared = Arc::new(SchedulerShared {
            queues: Mutex::new(Queues::default()),
            cond: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                // mb-lint: allow(no-adhoc-threads) -- resident scheduler workers park on a condvar; mb-pool tasks must never block
                std::thread::Builder::new()
                    .name(format!("mb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            limit,
            workers: handles,
        }
    }

    /// Enqueue `work` under `id`. Returns a typed [`Saturated`] rejection —
    /// without running or retaining anything — when the queue is full.
    pub fn submit(
        &self,
        id: &str,
        priority: Priority,
        work: Box<dyn FnOnce() + Send>,
    ) -> Result<(), Saturated> {
        let mut queues = self.shared.queues.lock().expect("scheduler poisoned");
        let queued = queues.len();
        if queued >= self.limit {
            return Err(Saturated {
                queued,
                limit: self.limit,
            });
        }
        let job = QueuedJob {
            id: id.to_string(),
            work,
        };
        match priority {
            Priority::High => queues.high.push_back(job),
            Priority::Normal => queues.normal.push_back(job),
            Priority::Low => queues.low.push_back(job),
        }
        drop(queues);
        self.shared.cond.notify_one();
        Ok(())
    }

    /// Remove a queued job before a worker picks it up. Returns `false` if
    /// the job already started (or never existed) — the caller then handles
    /// running-job cancellation itself.
    pub fn cancel(&self, id: &str) -> bool {
        self.shared
            .queues
            .lock()
            .expect("scheduler poisoned")
            .remove(id)
    }

    /// Number of jobs waiting for a worker (all classes).
    pub fn depth(&self) -> usize {
        self.shared.queues.lock().expect("scheduler poisoned").len()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut queues = self.shared.queues.lock().expect("scheduler poisoned");
            queues.shutdown = true;
        }
        self.shared.cond.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &SchedulerShared) {
    loop {
        let job = {
            let mut queues = shared.queues.lock().expect("scheduler poisoned");
            loop {
                if let Some(job) = queues.pop() {
                    break job;
                }
                if queues.shutdown {
                    return;
                }
                queues = shared.cond.wait(queues).expect("scheduler poisoned");
            }
        };
        (job.work)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn drains_in_priority_order() {
        // One worker, gated so everything queues before anything runs.
        let scheduler = Scheduler::start(1, 16);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        scheduler
            .submit(
                "gate",
                Priority::High,
                Box::new(move || {
                    gate_rx.recv().unwrap();
                }),
            )
            .unwrap();
        for (id, priority) in [
            ("low", Priority::Low),
            ("normal", Priority::Normal),
            ("high", Priority::High),
        ] {
            let tx = order_tx.clone();
            scheduler
                .submit(id, priority, Box::new(move || tx.send(id).unwrap()))
                .unwrap();
        }
        gate_tx.send(()).unwrap();
        let order: Vec<&str> = (0..3).map(|_| order_rx.recv().unwrap()).collect();
        assert_eq!(order, ["high", "normal", "low"]);
    }

    #[test]
    fn saturation_is_a_typed_rejection_and_cancel_frees_a_slot() {
        let scheduler = Scheduler::start(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let ran = Arc::new(AtomicUsize::new(0));
        scheduler
            .submit(
                "gate",
                Priority::Normal,
                Box::new(move || {
                    gate_rx.recv().unwrap();
                }),
            )
            .unwrap();
        // Wait for the worker to pick the gate job up so the queue is empty.
        while scheduler.depth() > 0 {
            std::thread::yield_now();
        }
        for id in ["a", "b"] {
            let ran = Arc::clone(&ran);
            scheduler
                .submit(
                    id,
                    Priority::Normal,
                    Box::new(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }),
                )
                .unwrap();
        }
        let err = scheduler
            .submit("c", Priority::Normal, Box::new(|| {}))
            .unwrap_err();
        assert_eq!(err, Saturated { queued: 2, limit: 2 });

        // Cancelling a queued job frees its slot; it never runs.
        assert!(scheduler.cancel("b"));
        assert!(!scheduler.cancel("b"));
        scheduler
            .submit(
                "c",
                Priority::Normal,
                Box::new({
                    let ran = Arc::clone(&ran);
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }
                }),
            )
            .unwrap();
        gate_tx.send(()).unwrap();
        drop(scheduler); // joins workers, draining the queue
        assert_eq!(ran.load(Ordering::SeqCst), 2); // a + c, not b
    }
}
