//! Canonical fingerprints for the shared model cache.
//!
//! Two submissions share a fitted model exactly when they would train the
//! same one: same estimator selection, same threshold percentile, same
//! training-sample cap, and the same metric columns. The fingerprint
//! therefore hashes the *model-relevant* slice of [`AnalysisConfig`] plus
//! every metric value — and deliberately ignores explanation thresholds,
//! attribute names, and retention flags, which shape the report but not the
//! model. Training is deterministic (pool-scattered FastMCD restarts merge
//! deterministically), so equal fingerprints really do mean bit-identical
//! models.

use macrobase_core::query::{AnalysisConfig, EstimatorKind};
use macrobase_core::types::Point;

/// Cache key for a fitted model: a 128-bit FNV-1a digest split into a
/// config half and a data half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    config: u64,
    data: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

fn estimator_tag(kind: EstimatorKind) -> u64 {
    match kind {
        EstimatorKind::Auto => 0,
        EstimatorKind::Mad => 1,
        EstimatorKind::Mcd => 2,
        EstimatorKind::ZScore => 3,
    }
}

impl Fingerprint {
    /// Fingerprint a (config, training batch) pair.
    pub fn compute(analysis: &AnalysisConfig, points: &[Point]) -> Fingerprint {
        let mut config = Fnv::new();
        config.write_u64(estimator_tag(analysis.estimator));
        config.write_f64(analysis.target_percentile);
        match analysis.training_sample_size {
            Some(n) => {
                config.write_u64(1);
                config.write_u64(n as u64);
            }
            None => config.write_u64(0),
        }

        let mut data = Fnv::new();
        data.write_u64(points.len() as u64);
        data.write_u64(points.first().map_or(0, |p| p.metrics.len()) as u64);
        for point in points {
            for &metric in &point.metrics {
                data.write_f64(metric);
            }
        }
        Fingerprint {
            config: config.0,
            data: data.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Point> {
        (0..100)
            .map(|i| Point::simple(10.0 + (i % 7) as f64, format!("d{}", i % 5)))
            .collect()
    }

    #[test]
    fn model_irrelevant_knobs_do_not_change_the_fingerprint() {
        let base = AnalysisConfig::default();
        let mut cosmetic = AnalysisConfig::default();
        cosmetic.explanation.min_support = 0.5;
        cosmetic.attribute_names = vec!["device".to_string()];
        cosmetic.retain_scores = true;
        cosmetic.skip_explanation = true;
        let batch = points();
        assert_eq!(
            Fingerprint::compute(&base, &batch),
            Fingerprint::compute(&cosmetic, &batch)
        );
    }

    #[test]
    fn model_relevant_knobs_and_data_do_change_the_fingerprint() {
        let base = AnalysisConfig::default();
        let batch = points();
        let reference = Fingerprint::compute(&base, &batch);

        let mut percentile = base.clone();
        percentile.target_percentile = 0.95;
        assert_ne!(Fingerprint::compute(&percentile, &batch), reference);

        let mut estimator = base.clone();
        estimator.estimator = EstimatorKind::ZScore;
        assert_ne!(Fingerprint::compute(&estimator, &batch), reference);

        let mut sampled = base.clone();
        sampled.training_sample_size = Some(50);
        assert_ne!(Fingerprint::compute(&sampled, &batch), reference);

        let mut other_batch = batch.clone();
        other_batch[0].metrics[0] += 1.0;
        assert_ne!(Fingerprint::compute(&base, &other_batch), reference);

        // Attributes feed explanation, not the model.
        let mut relabeled = batch;
        relabeled[0].attributes[0] = "other".to_string();
        assert_eq!(Fingerprint::compute(&base, &relabeled), reference);
    }
}
