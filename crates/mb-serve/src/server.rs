//! The resident server: admission, shared-model execution, session
//! lifecycle, and serve-level telemetry.
//!
//! A [`Server`] owns a [`Scheduler`] (admission + worker threads), a
//! [`ModelCache`] (fingerprint-keyed epoch-versioned snapshots), a registry
//! of open [`StreamingSession`]s, and one [`MetricRegistry`] counting all of
//! it. Queries execute on worker threads but their reports are produced by
//! the exact same engine code a standalone `MdpQuery::execute` runs —
//! sharing a cached model cannot change a single byte of the report.

use crate::cache::{CacheOutcome, ModelCache, ModelSnapshot};
use crate::fingerprint::Fingerprint;
use crate::scheduler::{Priority, Saturated, Scheduler};
use macrobase_core::query::{AnalysisConfig, Executor, MdpQuery, StreamingOptions};
use macrobase_core::streaming::StreamingSession;
use macrobase_core::types::{MdpReport, Point};
use mb_obs::MetricRegistry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Acquire a mutex, recovering from poisoning instead of panicking. A
/// poisoned lock means some other thread panicked mid-update; the server's
/// shared maps (jobs, sessions, registry) are valid after every individual
/// insert/remove, so continuing with the inner guard is safe — and a
/// resident server must never let one query's panic cascade into a
/// process-wide one. Behaves identically to `.lock().expect(..)` when the
/// lock is healthy.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue (concurrent queries).
    pub workers: usize,
    /// Maximum number of jobs waiting for a worker before submissions are
    /// rejected with a typed saturation error.
    pub max_queue: usize,
    /// Streaming sessions idle longer than this are expired by the sweeper.
    pub session_idle: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_queue: 64,
            session_idle: Duration::from_secs(900),
        }
    }
}

/// What to run: the analysis configuration plus an execution backend. The
/// serve surface is unsupervised-MDP only (no supervised rules and no
/// transformer chains cross the wire), which is exactly the shape the model
/// cache can share.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Analysis configuration (estimator, thresholds, retention, telemetry).
    pub analysis: AnalysisConfig,
    /// Execution backend.
    pub executor: Executor,
}

/// A finished job: the report plus model-cache provenance. The provenance
/// lives *next to* the report, never inside it, so the report stays
/// byte-identical to a standalone run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The report, byte-identical to the same query run standalone.
    pub report: MdpReport,
    /// Epoch of the model snapshot that scored this job (one-shot jobs
    /// through the cache only).
    pub model_epoch: Option<u64>,
    /// Whether the model was trained for this job or reused.
    pub cache: Option<CacheOutcome>,
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the result is retained until the job is closed. Boxed so
    /// the enum stays small while the report it carries can be large.
    Done(Box<JobResult>),
    /// Execution failed.
    Failed(String),
    /// Cancelled before completion (a running job's result is discarded).
    Cancelled,
}

/// Outcome of feeding a batch into a streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedSummary {
    /// Points accepted from this batch.
    pub points: u64,
    /// Points from this batch labeled outlier.
    pub outliers: u64,
    /// Session-lifetime points observed.
    pub total_points: u64,
    /// Session-lifetime outliers observed.
    pub total_outliers: u64,
}

/// What a successful [`Server::close`] closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Closed {
    /// A batch job (queued: cancelled; running: result discarded;
    /// finished: forgotten).
    Job,
    /// A streaming session.
    Session,
}

/// Typed server errors, each mapped to a wire error kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full; nothing was enqueued or retained.
    Saturated(Saturated),
    /// The id is already in use by a live job or session.
    DuplicateId(String),
    /// No live job or session has this id.
    UnknownId(String),
    /// The request is structurally valid but cannot be served (e.g. feeding
    /// a batch job, retraining a job that never used the cache).
    BadRequest(String),
    /// Query validation or execution failed.
    Query(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Saturated(s) => write!(f, "{s}"),
            ServeError::DuplicateId(id) => write!(f, "id {id:?} is already in use"),
            ServeError::UnknownId(id) => write!(f, "no job or session with id {id:?}"),
            ServeError::BadRequest(msg) => write!(f, "{msg}"),
            ServeError::Query(msg) => write!(f, "query failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct JobEntry {
    status: JobStatus,
    cancel_requested: bool,
    submitted: Instant,
    /// Cache provenance for retrains: the fingerprint plus what is needed
    /// to train its next epoch.
    retrain_source: Option<(Fingerprint, AnalysisConfig, Arc<Vec<Point>>)>,
}

struct SessionEntry {
    session: StreamingSession,
    last_used: Instant,
}

struct Inner {
    cache: ModelCache,
    jobs: Mutex<HashMap<String, JobEntry>>,
    jobs_cond: Condvar,
    sessions: Mutex<HashMap<String, SessionEntry>>,
    registry: Mutex<MetricRegistry>,
    session_idle: Duration,
    started: Instant,
}

impl Inner {
    fn count(&self, name: &str) {
        lock(&self.registry).add(name, 1);
    }

    fn record_ns(&self, name: &str, ns: u64) {
        lock(&self.registry).record_ns(name, ns);
    }
}

/// A resident multi-query MacroBase server. See the crate docs for the
/// overall shape; construct with [`Server::start`].
pub struct Server {
    inner: Arc<Inner>,
    scheduler: Scheduler,
}

impl Server {
    /// Start worker threads and return a ready server.
    pub fn start(config: ServeConfig) -> Server {
        Server {
            inner: Arc::new(Inner {
                cache: ModelCache::new(),
                jobs: Mutex::new(HashMap::new()),
                jobs_cond: Condvar::new(),
                sessions: Mutex::new(HashMap::new()),
                registry: Mutex::new(MetricRegistry::new()),
                session_idle: config.session_idle,
                started: Instant::now(),
            }),
            scheduler: Scheduler::start(config.workers, config.max_queue),
        }
    }

    /// Submit a batch query under a fresh id. One-shot executions go
    /// through the shared model cache (train once, score for every
    /// subscriber); partitioned and run-to-completion streaming executions
    /// run the standalone engines unchanged.
    pub fn submit(
        &self,
        id: &str,
        spec: QuerySpec,
        points: Vec<Point>,
        priority: Priority,
    ) -> Result<(), ServeError> {
        {
            let sessions = lock(&self.inner.sessions);
            if sessions.contains_key(id) {
                return Err(ServeError::DuplicateId(id.to_string()));
            }
        }
        {
            let mut jobs = lock(&self.inner.jobs);
            if jobs.contains_key(id) {
                return Err(ServeError::DuplicateId(id.to_string()));
            }
            jobs.insert(
                id.to_string(),
                JobEntry {
                    status: JobStatus::Queued,
                    cancel_requested: false,
                    submitted: Instant::now(),
                    retrain_source: None,
                },
            );
        }
        let inner = Arc::clone(&self.inner);
        let job_id = id.to_string();
        let work = Box::new(move || run_job(&inner, &job_id, spec, points));
        if let Err(saturated) = self.scheduler.submit(id, priority, work) {
            let mut jobs = lock(&self.inner.jobs);
            jobs.remove(id);
            self.inner.count("jobs_rejected");
            return Err(ServeError::Saturated(saturated));
        }
        self.inner.count("jobs_submitted");
        Ok(())
    }

    /// Current status of a job, optionally blocking until it reaches a
    /// terminal state (done / failed / cancelled) or `wait` elapses.
    pub fn poll(&self, id: &str, wait: Option<Duration>) -> Result<JobStatus, ServeError> {
        let deadline = wait.map(|w| Instant::now() + w);
        let mut jobs = lock(&self.inner.jobs);
        loop {
            let status = match jobs.get(id) {
                Some(entry) => entry.status.clone(),
                None => return Err(ServeError::UnknownId(id.to_string())),
            };
            let terminal = matches!(
                status,
                JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled
            );
            if terminal {
                return Ok(status);
            }
            let Some(deadline) = deadline else {
                return Ok(status);
            };
            let now = Instant::now();
            if now >= deadline {
                return Ok(status);
            }
            let (guard, _) = self
                .inner
                .jobs_cond
                .wait_timeout(jobs, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            jobs = guard;
        }
    }

    /// Close a job or session.
    ///
    /// * queued job — removed from the admission queue, marked cancelled;
    /// * running job — marked for cancellation; its result is discarded;
    /// * finished job — forgotten;
    /// * session — closed and dropped.
    pub fn close(&self, id: &str) -> Result<Closed, ServeError> {
        {
            let mut sessions = lock(&self.inner.sessions);
            if sessions.remove(id).is_some() {
                drop(sessions);
                self.inner.count("sessions_closed");
                return Ok(Closed::Session);
            }
        }
        let mut jobs = lock(&self.inner.jobs);
        let entry = jobs
            .get_mut(id)
            .ok_or_else(|| ServeError::UnknownId(id.to_string()))?;
        match entry.status {
            JobStatus::Queued => {
                if self.scheduler.cancel(id) {
                    entry.status = JobStatus::Cancelled;
                } else {
                    // The worker already claimed it; discard on completion.
                    entry.cancel_requested = true;
                }
                drop(jobs);
                self.inner.jobs_cond.notify_all();
                self.inner.count("jobs_cancelled");
            }
            JobStatus::Running => {
                entry.cancel_requested = true;
                drop(jobs);
                self.inner.count("jobs_cancelled");
            }
            JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled => {
                jobs.remove(id);
            }
        }
        Ok(Closed::Job)
    }

    /// Enqueue (at [`Priority::Low`]) a background retrain of the model a
    /// finished one-shot job used. The next epoch is published when
    /// training completes; in-flight and already-finished readers keep the
    /// snapshot they hold.
    pub fn retrain(&self, id: &str) -> Result<(), ServeError> {
        let source = {
            let jobs = lock(&self.inner.jobs);
            let entry = jobs
                .get(id)
                .ok_or_else(|| ServeError::UnknownId(id.to_string()))?;
            entry.retrain_source.clone().ok_or_else(|| {
                ServeError::BadRequest(
                    "job did not execute through the model cache; nothing to retrain".to_string(),
                )
            })?
        };
        let (fingerprint, analysis, points) = source;
        let inner = Arc::clone(&self.inner);
        let work = Box::new(move || {
            let query = MdpQuery::new(analysis);
            let outcome = inner.cache.retrain(fingerprint, || {
                query.train(&points).map_err(|e| e.to_string())
            });
            if outcome.is_ok() {
                inner.count("model_trainings");
                inner.count("epochs_published");
            }
        });
        self.scheduler
            .submit(&format!("{id}#retrain"), Priority::Low, work)
            .map_err(ServeError::Saturated)
    }

    /// The current published model snapshot behind a finished one-shot job,
    /// if any. Test/diagnostic surface for epoch semantics.
    pub fn model_snapshot(&self, id: &str) -> Option<Arc<ModelSnapshot>> {
        let fingerprint = {
            let jobs = lock(&self.inner.jobs);
            jobs.get(id)?.retrain_source.as_ref()?.0
        };
        self.inner.cache.peek(fingerprint)
    }

    /// Open a streaming session under `id`. The spec's executor must be
    /// [`Executor::Streaming`].
    pub fn open_session(&self, id: &str, spec: QuerySpec) -> Result<(), ServeError> {
        let Executor::Streaming { options } = spec.executor else {
            return Err(ServeError::BadRequest(
                "sessions require a streaming executor".to_string(),
            ));
        };
        self.sweep_idle_sessions();
        {
            let jobs = lock(&self.inner.jobs);
            if jobs.contains_key(id) {
                return Err(ServeError::DuplicateId(id.to_string()));
            }
        }
        let session = build_session(spec.analysis, &options)?;
        let mut sessions = lock(&self.inner.sessions);
        if sessions.contains_key(id) {
            return Err(ServeError::DuplicateId(id.to_string()));
        }
        sessions.insert(
            id.to_string(),
            SessionEntry {
                session,
                last_used: Instant::now(),
            },
        );
        drop(sessions);
        self.inner.count("sessions_opened");
        Ok(())
    }

    /// Feed a batch of points into an open session. Typed errors leave the
    /// session usable (see [`StreamingSession::feed`]).
    pub fn feed(&self, id: &str, points: &[Point]) -> Result<FeedSummary, ServeError> {
        let mut sessions = lock(&self.inner.sessions);
        let entry = sessions
            .get_mut(id)
            .ok_or_else(|| ServeError::UnknownId(id.to_string()))?;
        entry.last_used = Instant::now();
        let before = entry.session.points_seen();
        let result = entry.session.feed(points);
        let accepted = entry.session.points_seen() - before;
        let summary = FeedSummary {
            points: accepted,
            outliers: result.as_ref().copied().unwrap_or(0),
            total_points: entry.session.points_seen(),
            total_outliers: entry.session.outliers_seen(),
        };
        drop(sessions);
        {
            let mut registry = lock(&self.inner.registry);
            registry.add("session_points", summary.points);
        }
        match result {
            Ok(_) => Ok(summary),
            Err(e) => Err(ServeError::Query(e.to_string())),
        }
    }

    /// Render the current report of an open session (a snapshot; the
    /// session keeps accumulating).
    pub fn session_report(&self, id: &str) -> Result<MdpReport, ServeError> {
        let mut sessions = lock(&self.inner.sessions);
        let entry = sessions
            .get_mut(id)
            .ok_or_else(|| ServeError::UnknownId(id.to_string()))?;
        entry.last_used = Instant::now();
        Ok(entry.session.report())
    }

    /// Expire sessions idle longer than the configured limit; returns how
    /// many were dropped. Runs implicitly when sessions are opened.
    pub fn sweep_idle_sessions(&self) -> usize {
        let idle = self.inner.session_idle;
        let mut sessions = lock(&self.inner.sessions);
        let before = sessions.len();
        sessions.retain(|_, entry| entry.last_used.elapsed() < idle);
        let expired = before - sessions.len();
        drop(sessions);
        if expired > 0 {
            let mut registry = lock(&self.inner.registry);
            registry.add("sessions_expired", expired as u64);
        }
        expired
    }

    /// Snapshot of the serve-level metrics (counters for jobs, cache,
    /// trainings, sessions; gauges for queue depth and open sessions).
    pub fn stats(&self) -> MetricRegistry {
        let mut registry = lock(&self.inner.registry).clone();
        registry.set_gauge("queue_depth", self.scheduler.depth() as f64);
        registry.set_gauge(
            "sessions_open",
            lock(&self.inner.sessions).len() as f64,
        );
        registry
    }

    /// Nanoseconds since the server started.
    pub fn uptime_ns(&self) -> u64 {
        u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

fn build_session(
    analysis: AnalysisConfig,
    options: &StreamingOptions,
) -> Result<StreamingSession, ServeError> {
    MdpQuery::new(analysis)
        .into_streaming(options)
        .map_err(|e| ServeError::Query(e.to_string()))
}

/// Execute one job on a worker thread and publish its terminal status.
fn run_job(inner: &Inner, id: &str, spec: QuerySpec, points: Vec<Point>) {
    // Claim the job; a close() racing ahead of the worker wins.
    {
        let mut jobs = lock(&inner.jobs);
        let Some(entry) = jobs.get_mut(id) else {
            return;
        };
        if entry.cancel_requested {
            entry.status = JobStatus::Cancelled;
            drop(jobs);
            inner.jobs_cond.notify_all();
            return;
        }
        let wait_ns = u64::try_from(entry.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        entry.status = JobStatus::Running;
        drop(jobs);
        inner.record_ns("queue_wait_ns", wait_ns);
        inner.jobs_cond.notify_all();
    }

    let exec_start = Instant::now();
    let (outcome, retrain_source) = execute_job(inner, spec, points);
    inner.record_ns(
        "exec_ns",
        u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );

    let mut jobs = lock(&inner.jobs);
    let Some(entry) = jobs.get_mut(id) else {
        return;
    };
    if entry.cancel_requested {
        // Closed while running: the result is discarded, as promised.
        entry.status = JobStatus::Cancelled;
    } else {
        entry.retrain_source = retrain_source;
        entry.status = match outcome {
            Ok(result) => {
                inner.count("jobs_completed");
                JobStatus::Done(Box::new(result))
            }
            Err(message) => {
                inner.count("jobs_failed");
                JobStatus::Failed(message)
            }
        };
    }
    drop(jobs);
    inner.jobs_cond.notify_all();
}

type RetrainSource = Option<(Fingerprint, AnalysisConfig, Arc<Vec<Point>>)>;

fn execute_job(
    inner: &Inner,
    spec: QuerySpec,
    points: Vec<Point>,
) -> (Result<JobResult, String>, RetrainSource) {
    match spec.executor {
        Executor::OneShot => {
            let fingerprint = Fingerprint::compute(&spec.analysis, &points);
            let points = Arc::new(points);
            let query = MdpQuery::new(spec.analysis.clone());
            let train_points = Arc::clone(&points);
            let cached = inner.cache.get_or_train(fingerprint, || {
                query.train(&train_points).map_err(|e| e.to_string())
            });
            let (snapshot, outcome) = match cached {
                Ok(hit) => hit,
                Err(message) => {
                    inner.count("cache_misses");
                    return (Err(message), None);
                }
            };
            match outcome {
                CacheOutcome::Miss => {
                    inner.count("cache_misses");
                    inner.count("model_trainings");
                    inner.count("epochs_published");
                }
                CacheOutcome::Hit => inner.count("cache_hits"),
            }
            let result = query
                .execute_with_model(&snapshot.model, &points)
                .map(|report| JobResult {
                    report,
                    model_epoch: Some(snapshot.epoch),
                    cache: Some(outcome),
                })
                .map_err(|e| e.to_string());
            (
                result,
                Some((fingerprint, spec.analysis, points)),
            )
        }
        executor => {
            let mut query = MdpQuery::new(spec.analysis);
            let result = query
                .execute(&executor, &points)
                .map(|report| JobResult {
                    report,
                    model_epoch: None,
                    cache: None,
                })
                .map_err(|e| e.to_string());
            (result, None)
        }
    }
}
