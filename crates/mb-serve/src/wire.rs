//! The JSON-lines wire front end: one request object per line in, one
//! response object per line out.
//!
//! Requests carry an `"op"` discriminator — `submit`, `poll`, `feed`,
//! `close`, `stats`, `retrain` — and op-specific fields; analysis configs,
//! executors, points, and reports all use the `core::wire` codecs, so a
//! report on the wire is byte-identical to `report_to_string` of the same
//! standalone run. Unknown ops *and unknown top-level keys* are typed
//! errors: a misspelled field never silently falls back to a default.
//!
//! Responses always carry `"ok"`. Failures look like
//! `{"ok":false,"error":{"kind":...,"message":...}}`; the kinds are
//! `malformed`, `protocol`, `unknown_op`, `saturated`, `duplicate_id`,
//! `unknown_id`, `bad_request`, and `query`.

use crate::scheduler::Priority;
use crate::server::{Closed, JobStatus, QuerySpec, ServeError, Server};
use macrobase_core::query::Executor;
use macrobase_core::wire::{
    analysis_from_json, executor_from_json, points_from_json, report_to_json,
};
use serde_json::{Map, Value};
use std::io::{BufRead, Write};

fn error_response(kind: &str, message: impl Into<String>) -> Value {
    let mut error = Map::new();
    error.insert("kind".to_string(), Value::String(kind.to_string()));
    error.insert("message".to_string(), Value::String(message.into()));
    let mut map = Map::new();
    map.insert("ok".to_string(), Value::Bool(false));
    map.insert("error".to_string(), Value::Object(error));
    Value::Object(map)
}

fn serve_error_response(err: ServeError) -> Value {
    let kind = match &err {
        ServeError::Saturated(_) => "saturated",
        ServeError::DuplicateId(_) => "duplicate_id",
        ServeError::UnknownId(_) => "unknown_id",
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Query(_) => "query",
    };
    error_response(kind, err.to_string())
}

fn ok_response(op: &str, id: Option<&str>) -> Map {
    let mut map = Map::new();
    map.insert("ok".to_string(), Value::Bool(true));
    map.insert("op".to_string(), Value::String(op.to_string()));
    if let Some(id) = id {
        map.insert("id".to_string(), Value::String(id.to_string()));
    }
    map
}

fn check_keys(map: &Map, allowed: &[&str]) -> Result<(), Value> {
    for (key, _) in map.iter() {
        if !allowed.contains(&key.as_str()) {
            return Err(error_response(
                "protocol",
                format!("unknown field {key:?} in request"),
            ));
        }
    }
    Ok(())
}

fn required_id(map: &Map) -> Result<String, Value> {
    match map.get("id") {
        Some(Value::String(id)) => Ok(id.clone()),
        Some(_) => Err(error_response("protocol", "id must be a string")),
        None => Err(error_response("protocol", "missing field id")),
    }
}

/// Handle one request line, returning the response line (no trailing
/// newline). Never panics on malformed input: every failure is an error
/// response.
pub fn handle_line(server: &Server, line: &str) -> String {
    handle_value(server, line).to_string()
}

fn handle_value(server: &Server, line: &str) -> Value {
    let value: Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(e) => return error_response("malformed", format!("malformed JSON: {e}")),
    };
    let Some(map) = value.as_object() else {
        return error_response("malformed", "request must be a JSON object");
    };
    let op = match map.get("op") {
        Some(Value::String(op)) => op.clone(),
        Some(_) => return error_response("protocol", "op must be a string"),
        None => return error_response("protocol", "missing field op"),
    };
    let result = match op.as_str() {
        "submit" => handle_submit(server, map),
        "poll" => handle_poll(server, map),
        "feed" => handle_feed(server, map),
        "close" => handle_close(server, map),
        "retrain" => handle_retrain(server, map),
        "stats" => handle_stats(server, map),
        _ => Err(error_response(
            "unknown_op",
            format!("unknown op {op:?}; expected submit, poll, feed, close, retrain, or stats"),
        )),
    };
    match result {
        Ok(response) | Err(response) => response,
    }
}

fn handle_submit(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op", "id", "priority", "analysis", "executor", "points"])?;
    let id = required_id(map)?;
    let priority = match map.get("priority") {
        None => Priority::Normal,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| error_response("protocol", "priority must be a string"))?;
            Priority::parse(name).ok_or_else(|| {
                error_response("protocol", "priority must be one of high, normal, low")
            })?
        }
    };
    let analysis = match map.get("analysis") {
        Some(v) => analysis_from_json(v, "analysis")
            .map_err(|e| error_response("protocol", e.to_string()))?,
        None => Default::default(),
    };
    let executor = match map.get("executor") {
        Some(v) => executor_from_json(v, "executor")
            .map_err(|e| error_response("protocol", e.to_string()))?,
        None => Executor::OneShot,
    };
    let spec = QuerySpec { analysis, executor };

    // A streaming executor with no inline points opens a session to feed;
    // everything else is a batch job over the supplied points.
    let points = match map.get("points") {
        Some(v) => Some(
            points_from_json(v, "points")
                .map_err(|e| error_response("protocol", e.to_string()))?,
        ),
        None => None,
    };
    match points {
        None => {
            if !matches!(spec.executor, Executor::Streaming { .. }) {
                return Err(error_response(
                    "protocol",
                    "missing field points (only streaming submissions may omit them)",
                ));
            }
            server
                .open_session(&id, spec)
                .map_err(serve_error_response)?;
            let mut response = ok_response("submit", Some(&id));
            response.insert("state".to_string(), Value::String("session".to_string()));
            Ok(Value::Object(response))
        }
        Some(points) => {
            server
                .submit(&id, spec, points, priority)
                .map_err(serve_error_response)?;
            let mut response = ok_response("submit", Some(&id));
            response.insert("state".to_string(), Value::String("queued".to_string()));
            Ok(Value::Object(response))
        }
    }
}

fn handle_poll(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op", "id", "wait_ms"])?;
    let id = required_id(map)?;
    let wait = match map.get("wait_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_f64()
                .filter(|ms| *ms >= 0.0 && ms.fract() == 0.0)
                .ok_or_else(|| {
                    error_response("protocol", "wait_ms must be a non-negative integer")
                })?;
            Some(std::time::Duration::from_millis(ms as u64))
        }
    };
    match server.poll(&id, wait) {
        Ok(status) => {
            let mut response = ok_response("poll", Some(&id));
            match status {
                JobStatus::Queued => {
                    response.insert("state".to_string(), Value::String("queued".to_string()));
                }
                JobStatus::Running => {
                    response.insert("state".to_string(), Value::String("running".to_string()));
                }
                JobStatus::Cancelled => {
                    response
                        .insert("state".to_string(), Value::String("cancelled".to_string()));
                }
                JobStatus::Failed(message) => {
                    response.insert("state".to_string(), Value::String("failed".to_string()));
                    response.insert("message".to_string(), Value::String(message));
                }
                JobStatus::Done(result) => {
                    response.insert("state".to_string(), Value::String("done".to_string()));
                    response.insert(
                        "model_epoch".to_string(),
                        match result.model_epoch {
                            Some(epoch) => Value::from(epoch),
                            None => Value::Null,
                        },
                    );
                    response.insert(
                        "model_cache".to_string(),
                        match result.cache {
                            Some(crate::cache::CacheOutcome::Hit) => {
                                Value::String("hit".to_string())
                            }
                            Some(crate::cache::CacheOutcome::Miss) => {
                                Value::String("miss".to_string())
                            }
                            None => Value::Null,
                        },
                    );
                    response.insert("report".to_string(), report_to_json(&result.report));
                }
            }
            Ok(Value::Object(response))
        }
        // Not a job: a poll against an open session renders its snapshot.
        Err(ServeError::UnknownId(_)) => match server.session_report(&id) {
            Ok(report) => {
                let mut response = ok_response("poll", Some(&id));
                response.insert("state".to_string(), Value::String("session".to_string()));
                response.insert("report".to_string(), report_to_json(&report));
                Ok(Value::Object(response))
            }
            Err(e) => Err(serve_error_response(e)),
        },
        Err(e) => Err(serve_error_response(e)),
    }
}

fn handle_feed(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op", "id", "points"])?;
    let id = required_id(map)?;
    let points = points_from_json(
        map.get("points")
            .ok_or_else(|| error_response("protocol", "missing field points"))?,
        "points",
    )
    .map_err(|e| error_response("protocol", e.to_string()))?;
    let summary = server
        .feed(&id, &points)
        .map_err(serve_error_response)?;
    let mut response = ok_response("feed", Some(&id));
    response.insert("points".to_string(), Value::from(summary.points));
    response.insert("outliers".to_string(), Value::from(summary.outliers));
    response.insert("total_points".to_string(), Value::from(summary.total_points));
    response.insert(
        "total_outliers".to_string(),
        Value::from(summary.total_outliers),
    );
    Ok(Value::Object(response))
}

fn handle_close(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op", "id"])?;
    let id = required_id(map)?;
    let closed = server.close(&id).map_err(serve_error_response)?;
    let mut response = ok_response("close", Some(&id));
    response.insert(
        "closed".to_string(),
        Value::String(
            match closed {
                Closed::Job => "job",
                Closed::Session => "session",
            }
            .to_string(),
        ),
    );
    Ok(Value::Object(response))
}

fn handle_retrain(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op", "id"])?;
    let id = required_id(map)?;
    server.retrain(&id).map_err(serve_error_response)?;
    Ok(Value::Object(ok_response("retrain", Some(&id))))
}

fn handle_stats(server: &Server, map: &Map) -> Result<Value, Value> {
    check_keys(map, &["op"])?;
    let registry = server.stats();
    let mut counters = Map::new();
    for (name, value) in registry.counter_entries() {
        counters.insert(name, Value::from(value));
    }
    let mut gauges = Map::new();
    for (name, value) in registry.gauge_entries() {
        gauges.insert(name, Value::from(value));
    }
    let mut response = ok_response("stats", None);
    response.insert("counters".to_string(), Value::Object(counters));
    response.insert("gauges".to_string(), Value::Object(gauges));
    response.insert("uptime_ns".to_string(), Value::from(server.uptime_ns()));
    Ok(Value::Object(response))
}

/// The listener loop: serve requests line-by-line until EOF. Empty lines
/// are ignored; every non-empty line gets exactly one response line,
/// flushed immediately so a piped client can interleave requests and
/// responses.
pub fn serve_loop<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{}", handle_line(server, &line))?;
        writer.flush()?;
    }
    Ok(())
}
