//! mb-serve: a resident multi-query MacroBase server.
//!
//! The paper's deployment story is operators pointing many standing
//! analyses at fast data; this crate is the layer that admits them
//! concurrently over shared infrastructure:
//!
//! * [`scheduler`] — bounded admission with per-query priority classes,
//!   typed [`Saturated`] rejection, and cancellation, drained by a small
//!   set of worker threads. Each job's *internal* parallelism still runs on
//!   the process-wide [`mb_pool`], which the server configures once at
//!   startup (the pool's one-shot contract makes a later misconfiguration a
//!   typed error, not a silent no-op).
//! * [`cache`] — the shared model cache: immutable, epoch-stamped
//!   [`ModelSnapshot`]s keyed by a canonical [`Fingerprint`] of the
//!   model-relevant config and training metrics. A model trains once and
//!   scores for every subscriber; a background retrain publishes the next
//!   epoch by swapping an `Arc` while in-flight readers keep the one they
//!   hold — the multiversion snapshot discipline, applied to models.
//! * [`server`] — job and [`StreamingSession`](macrobase_core::streaming::StreamingSession)
//!   lifecycle (submit / poll / feed / snapshot-report / close, with idle
//!   expiry) plus one [`mb_obs::MetricRegistry`] counting all of it.
//! * [`wire`] — a JSON-lines protocol over stdin/stdout (`submit`, `poll`,
//!   `feed`, `close`, `stats`, `retrain`) built on the `core::wire` codecs.
//!
//! The invariant the whole crate is built around: **serving never changes
//! an answer**. Reports produced through the server are byte-identical to
//! the same query run standalone — training is deterministic, snapshots
//! are immutable, and cache provenance (epoch, hit/miss) travels next to
//! the report, never inside it.
//!
//! ```
//! use mb_serve::{Priority, QuerySpec, ServeConfig, Server, JobStatus};
//! use macrobase_core::query::{Executor, MdpQuery};
//! use macrobase_core::types::Point;
//!
//! let points: Vec<Point> = (0..2_000)
//!     .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("d{}", i % 20)))
//!     .collect();
//!
//! let server = Server::start(ServeConfig::default());
//! let spec = QuerySpec {
//!     analysis: Default::default(),
//!     executor: Executor::OneShot,
//! };
//! server.submit("q1", spec, points.clone(), Priority::Normal).unwrap();
//! let status = server.poll("q1", Some(std::time::Duration::from_secs(30))).unwrap();
//! let JobStatus::Done(result) = status else { panic!("expected completion") };
//!
//! // Byte-identical to the standalone run.
//! let standalone = MdpQuery::with_defaults()
//!     .execute(&Executor::OneShot, &points)
//!     .unwrap();
//! assert_eq!(result.report, standalone);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use cache::{CacheOutcome, ModelCache, ModelSnapshot};
pub use fingerprint::Fingerprint;
pub use scheduler::{Priority, Saturated, Scheduler};
pub use server::{
    Closed, FeedSummary, JobResult, JobStatus, QuerySpec, ServeConfig, ServeError, Server,
};
pub use wire::{handle_line, serve_loop};
