//! Mergeable metric registries: per-worker shards, no locks, monoid fold.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use mb_sketch::Mergeable;
use std::collections::BTreeMap;

/// A gauge sample paired with its update count.
///
/// Gauges are not monotonic, so merging two shards needs a deterministic
/// tie-break: the shard that updated the gauge more often wins (it saw the
/// metric last in any serial interleaving of the same work), and equal
/// update counts resolve to the larger value. This keeps merged registries
/// independent of worker scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeValue {
    /// Most recent value set on this shard.
    pub value: f64,
    /// Number of times the gauge was set on this shard.
    pub updates: u64,
}

impl Mergeable for GaugeValue {
    fn merge(&mut self, other: Self) {
        let take_other = other.updates > self.updates
            || (other.updates == self.updates && other.value > self.value);
        if take_other {
            self.value = other.value;
        }
        self.updates += other.updates;
    }
}

/// A named bag of counters, gauges, and latency histograms.
///
/// This is the *thread-local shard* of the telemetry design: each worker (or
/// scatter task) owns one registry outright, records into it with plain
/// non-atomic writes, and the owner folds the shards with
/// [`Mergeable::merge`] after the scatter joins. There is no shared mutable
/// state anywhere on the hot path — the same coordination-avoidance argument
/// the engines use for scores and explanation state applies to metrics,
/// because every metric here is a commutative monoid (counters and histogram
/// buckets add; gauges resolve by update count).
///
/// Names are kept in `BTreeMap`s so iteration — and therefore export and
/// wire encoding — is always in sorted order, independent of insertion
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeValue>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let slot = self.gauges.entry(name.to_string()).or_default();
        slot.value = value;
        slot.updates += 1;
    }

    /// Record a latency sample (nanoseconds) into the named histogram.
    pub fn record_ns(&mut self, name: &str, ns: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record_ns(ns);
        } else {
            let mut h = LatencyHistogram::new();
            h.record_ns(ns);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Record a latency sample from a [`std::time::Duration`].
    pub fn record(&mut self, name: &str, elapsed: std::time::Duration) {
        self.record_ns(name, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Current value of a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|g| g.value)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counter_entries(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// All gauges in name order.
    pub fn gauge_entries(&self) -> Vec<(String, f64)> {
        self.gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.value))
            .collect()
    }

    /// Snapshots of all histograms in name order.
    pub fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.histograms.iter().map(|(k, h)| h.snapshot(k)).collect()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl Mergeable for MetricRegistry {
    fn merge(&mut self, other: Self) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, g) in other.gauges {
            self.gauges.entry(name).or_default().merge(g);
        }
        for (name, h) in other.histograms {
            match self.histograms.get_mut(&name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name, h);
                }
            }
        }
    }
}

/// Fold per-worker registry shards into one, in iteration order.
///
/// The result is order-independent for counters and histograms (commutative
/// addition) and deterministic for gauges (update-count tie-break), so any
/// shard ordering yields the same merged registry.
pub fn merge_shards<I: IntoIterator<Item = MetricRegistry>>(shards: I) -> MetricRegistry {
    let mut merged = MetricRegistry::new();
    for shard in shards {
        merged.merge(shard);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_across_shards() {
        let mut a = MetricRegistry::new();
        a.add("tasks", 3);
        a.add("tasks", 2);
        let mut b = MetricRegistry::new();
        b.add("tasks", 7);
        b.add("steals", 1);
        let merged = merge_shards([a, b]);
        assert_eq!(merged.counter("tasks"), 12);
        assert_eq!(merged.counter("steals"), 1);
        assert_eq!(merged.counter("absent"), 0);
    }

    #[test]
    fn shard_merge_is_order_independent() {
        let mut shards = Vec::new();
        for w in 0..4u64 {
            let mut r = MetricRegistry::new();
            r.add("tasks", w + 1);
            r.record_ns("lat", 100 * (w + 1));
            r.set_gauge("staleness", w as f64);
            if w == 2 {
                r.set_gauge("staleness", 9.0); // worker 2 updates twice → wins
            }
            shards.push(r);
        }
        let forward = merge_shards(shards.clone());
        shards.reverse();
        let backward = merge_shards(shards);
        assert_eq!(forward, backward);
        assert_eq!(forward.counter("tasks"), 10);
        assert_eq!(forward.histogram("lat").unwrap().count(), 4);
        assert_eq!(forward.gauge("staleness"), Some(9.0));
    }

    #[test]
    fn gauge_ties_resolve_to_larger_value() {
        let mut a = GaugeValue {
            value: 1.0,
            updates: 1,
        };
        let b = GaugeValue {
            value: 5.0,
            updates: 1,
        };
        a.merge(b);
        assert_eq!(a.value, 5.0);
        assert_eq!(a.updates, 2);
    }

    #[test]
    fn sorted_iteration_regardless_of_insertion() {
        let mut r = MetricRegistry::new();
        r.add("zeta", 1);
        r.add("alpha", 1);
        r.record_ns("m2", 5);
        r.record_ns("m1", 5);
        assert_eq!(
            r.counter_entries().iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "zeta"]
        );
        assert_eq!(
            r.histogram_snapshots().iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        assert!(!r.is_empty());
        assert!(MetricRegistry::new().is_empty());
    }
}
