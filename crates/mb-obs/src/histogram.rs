//! Log-bucketed latency histograms with additive merge.

use mb_sketch::Mergeable;

/// Number of power-of-two latency buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns), so the top
/// bucket starts at `2^47` ns ≈ 39 hours — far beyond any query stage.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-size, log₂-bucketed latency histogram.
///
/// Recording is two adds and a `leading_zeros`; merging is element-wise
/// bucket addition, so per-worker histograms fold without coordination and
/// the merged result is independent of merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one sample, in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Record one sample from a [`std::time::Duration`].
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample in nanoseconds, or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive bucket edge) of the bucket containing the
    /// `q`-quantile, or `None` when the histogram is empty. `q` is clamped
    /// to `[0, 1]`. Resolution is one octave — good enough to spot a
    /// regression, cheap enough to keep on the hot path.
    pub fn quantile_upper_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i + 1 >= 64 { u64::MAX } else { 1u64 << (i + 1) });
            }
        }
        Some(u64::MAX)
    }

    /// A compact named snapshot (non-empty buckets only) for embedding in a
    /// [`QueryTrace`](crate::QueryTrace) and the wire format.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum_ns: self.sum_ns,
            max_ns: self.max_ns,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect(),
        }
    }
}

impl Mergeable for LatencyHistogram {
    fn merge(&mut self, other: Self) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// A named, sparse histogram snapshot: `(log₂ lower-bound exponent, count)`
/// pairs in ascending exponent order. This is the form that rides on
/// [`QueryTrace`](crate::QueryTrace) and round-trips through `core::wire`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name, e.g. `"streaming_retrain_ns"`.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of samples in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample in nanoseconds.
    pub max_ns: u64,
    /// Non-empty buckets as `(exponent, count)`; bucket covers
    /// `[2^exponent, 2^(exponent+1))` ns.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds, or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = LatencyHistogram::new();
        a.record_ns(10);
        a.record_ns(1_000);
        let mut b = LatencyHistogram::new();
        b.record_ns(10);
        b.record_ns(1_000_000);
        a.merge(b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum_ns(), 1_001_020);
        assert_eq!(a.max_ns(), 1_000_000);
        let snap = a.snapshot("t");
        assert_eq!(snap.buckets, vec![(3, 2), (9, 1), (19, 1)]);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples = [5u64, 80, 80, 4_000, 123_456, 7];
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record_ns(s);
            } else {
                right.record_ns(s);
            }
        }
        let mut ab = left.clone();
        ab.merge(right.clone());
        let mut ba = right;
        ba.merge(left);
        assert_eq!(ab, ba);
    }

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(100); // bucket 6: [64, 128)
        }
        h.record_ns(1 << 20); // bucket 20
        assert_eq!(h.quantile_upper_bound_ns(0.5), Some(128));
        assert_eq!(h.quantile_upper_bound_ns(0.99), Some(128));
        assert_eq!(h.quantile_upper_bound_ns(1.0), Some(1 << 21));
        assert_eq!(LatencyHistogram::new().quantile_upper_bound_ns(0.5), None);
    }

    #[test]
    fn snapshot_mean_matches_histogram() {
        let mut h = LatencyHistogram::new();
        h.record_ns(100);
        h.record_ns(300);
        assert_eq!(h.mean_ns(), 200);
        assert_eq!(h.snapshot("x").mean_ns(), 200);
    }
}
