//! JSON-lines export of query traces over the vendored `serde_json`.
//!
//! Two shapes are provided: [`trace_to_json`] renders a whole
//! [`QueryTrace`] as one nested object (the same layout `core::wire` embeds
//! in reports), and [`trace_to_json_lines`] flattens it into one small
//! object per line — the format the reproduction binaries print under
//! `--trace` (prefixed `TRACE: `), easy to grep and to ship to a log
//! collector.

use crate::histogram::HistogramSnapshot;
use crate::trace::{QueryTrace, StageTrace};
use serde_json::{json, Map, Value};

fn finite(value: f64) -> Value {
    if value.is_finite() {
        Value::from(value)
    } else {
        Value::from(value.to_string())
    }
}

fn stage_json(stage: &StageTrace) -> Value {
    json!({
        "stage": stage.stage,
        "wall_ns": stage.wall_ns,
        "rows_in": stage.rows_in,
        "rows_out": stage.rows_out,
        "batches": stage.batches,
    })
}

fn histogram_json(snapshot: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = snapshot
        .buckets
        .iter()
        .map(|&(exp, count)| Value::Array(vec![Value::from(exp), Value::from(count)]))
        .collect();
    json!({
        "name": snapshot.name,
        "count": snapshot.count,
        "sum_ns": snapshot.sum_ns,
        "max_ns": snapshot.max_ns,
        "buckets": Value::Array(buckets),
    })
}

/// Render a trace as one nested JSON object.
pub fn trace_to_json(trace: &QueryTrace) -> Value {
    let stages: Vec<Value> = trace.stages.iter().map(stage_json).collect();
    let mut counters = Map::new();
    for (name, value) in &trace.counters {
        counters.insert(name.clone(), Value::from(*value));
    }
    let mut gauges = Map::new();
    for (name, value) in &trace.gauges {
        gauges.insert(name.clone(), finite(*value));
    }
    let histograms: Vec<Value> = trace.histograms.iter().map(histogram_json).collect();
    json!({
        "executor": trace.executor,
        "partitions": trace.partitions,
        "stages": Value::Array(stages),
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
        "histograms": Value::Array(histograms),
    })
}

/// Flatten a trace into JSON-lines: one object per stage, counter, gauge,
/// and histogram, each tagged with `kind` and the executor name. Returns
/// the lines joined with `\n` (no trailing newline).
pub fn trace_to_json_lines(trace: &QueryTrace) -> String {
    let mut lines = Vec::new();
    for stage in &trace.stages {
        let mut row = stage_json(stage);
        annotate(&mut row, trace, "stage");
        lines.push(row.to_string());
    }
    for (name, value) in &trace.counters {
        let mut row = json!({"name": name, "value": Value::from(*value)});
        annotate(&mut row, trace, "counter");
        lines.push(row.to_string());
    }
    for (name, value) in &trace.gauges {
        let mut row = json!({"name": name, "value": finite(*value)});
        annotate(&mut row, trace, "gauge");
        lines.push(row.to_string());
    }
    for snapshot in &trace.histograms {
        let mut row = histogram_json(snapshot);
        annotate(&mut row, trace, "histogram");
        lines.push(row.to_string());
    }
    lines.join("\n")
}

/// Prefix `kind` and `executor` keys onto a flat row, keeping them first in
/// the emitted object for scannability.
fn annotate(row: &mut Value, trace: &QueryTrace, kind: &str) {
    let mut tagged = Map::new();
    tagged.insert("kind".to_string(), Value::from(kind));
    tagged.insert("executor".to_string(), Value::from(trace.executor.as_str()));
    if let Some(fields) = row.as_object() {
        for (k, v) in fields.iter() {
            tagged.insert(k.clone(), v.clone());
        }
    }
    *row = Value::Object(tagged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsConfig, TraceBuilder};

    fn sample_trace() -> QueryTrace {
        let mut tb = TraceBuilder::new(ObsConfig::enabled(), "streaming");
        let t = tb.start();
        tb.finish_stage(t, "score", 1000, 20, 1);
        tb.registry().add("points", 1000);
        tb.registry().set_gauge("staleness", 150.0);
        tb.registry().record_ns("retrain_ns", 4096);
        tb.finish().unwrap()
    }

    #[test]
    fn nested_json_carries_every_section() {
        let value = trace_to_json(&sample_trace());
        let obj = value.as_object().unwrap();
        assert_eq!(obj.get("executor").unwrap().as_str(), Some("streaming"));
        assert_eq!(obj.get("partitions").unwrap().as_f64(), Some(1.0));
        let counters = obj.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters.get("points").unwrap().as_f64(), Some(1000.0));
        let rendered = value.to_string();
        let reparsed = serde_json::from_str(&rendered).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn json_lines_tag_each_row() {
        let lines = trace_to_json_lines(&sample_trace());
        let rows: Vec<Value> = lines
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 4); // stage + counter + gauge + histogram
        let kinds: Vec<&str> = rows
            .iter()
            .map(|r| r.as_object().unwrap().get("kind").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(kinds, vec!["stage", "counter", "gauge", "histogram"]);
        for row in &rows {
            assert_eq!(
                row.as_object().unwrap().get("executor").unwrap().as_str(),
                Some("streaming")
            );
        }
    }

    #[test]
    fn non_finite_gauges_export_as_strings() {
        assert_eq!(finite(f64::INFINITY).as_str(), Some("inf"));
        assert_eq!(finite(2.5).as_f64(), Some(2.5));
    }
}
