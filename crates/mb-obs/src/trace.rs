//! Per-stage query traces and the span API the executors record them with.

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricRegistry;
use crate::ObsConfig;
use mb_sketch::Mergeable;
use std::time::Instant;

/// One timed pipeline stage inside a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTrace {
    /// Stage name — one of [`crate::stage`] or an engine-specific span.
    pub stage: String,
    /// Wall time spent in the stage, in nanoseconds.
    pub wall_ns: u64,
    /// Rows entering the stage.
    pub rows_in: u64,
    /// Rows leaving the stage (e.g. outliers out of `score`).
    pub rows_out: u64,
    /// Batches or partition tasks processed within the stage.
    pub batches: u64,
}

/// The telemetry record attached to a finished report when tracing is
/// enabled (`MdpReport::trace` in `macrobase-core`), and `None` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Executor name (`"one-shot"`, `"coordinated"`, …).
    pub executor: String,
    /// Partition fan-out used by the engine (1 for unpartitioned runs).
    pub partitions: u64,
    /// Timed stages in execution order.
    pub stages: Vec<StageTrace>,
    /// Merged counters in name order (pool task/steal counts, row counts…).
    pub counters: Vec<(String, u64)>,
    /// Merged gauges in name order (model staleness, worker count…).
    pub gauges: Vec<(String, f64)>,
    /// Latency histogram snapshots in name order (streaming tick costs…).
    pub histograms: Vec<HistogramSnapshot>,
}

impl QueryTrace {
    /// The first stage with the given name, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// A counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// A gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total wall nanoseconds across all recorded stages.
    pub fn total_stage_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }
}

/// A started stage clock, produced by [`TraceBuilder::start`].
///
/// Holds `None` when the builder is disabled, so taking one costs a branch
/// and no clock read.
#[derive(Debug, Clone, Copy)]
#[must_use = "pass the timer back to TraceBuilder::finish_stage"]
pub struct StageTimer(Option<Instant>);

impl StageTimer {
    /// Start a standalone timer when `enabled`, a disabled (`None`) timer
    /// otherwise. This is the sanctioned clock read for engine code that
    /// times work outside a [`TraceBuilder`] stage (e.g. per-tick costs fed
    /// straight into a [`MetricRegistry`] histogram): the `mb-lint`
    /// `no-adhoc-clock` rule confines raw `Instant::now` to the
    /// observability and benchmark layers, and this constructor keeps the
    /// disabled path clock-free just like [`TraceBuilder::start`].
    pub fn start_if(enabled: bool) -> Self {
        StageTimer(if enabled { Some(Instant::now()) } else { None })
    }

    /// Whether this timer holds a live clock (false for disabled timers).
    pub fn is_running(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the timer started (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// Accumulates a [`QueryTrace`] during query execution.
///
/// A builder constructed from a disabled [`ObsConfig`] is inert: timers are
/// `None`, stage finishes are dropped, and [`TraceBuilder::finish`] returns
/// `None`, so the untraced hot path pays only untaken branches.
#[derive(Debug)]
pub struct TraceBuilder {
    enabled: bool,
    executor: String,
    partitions: u64,
    stages: Vec<StageTrace>,
    registry: MetricRegistry,
}

impl TraceBuilder {
    /// A builder for the named executor, active when `config` enables
    /// telemetry.
    pub fn new(config: ObsConfig, executor: &str) -> Self {
        TraceBuilder {
            enabled: config.is_enabled(),
            executor: if config.is_enabled() {
                executor.to_string()
            } else {
                String::new()
            },
            partitions: 1,
            stages: Vec::new(),
            registry: MetricRegistry::new(),
        }
    }

    /// An inert builder (used by untraced entry points).
    pub fn disabled() -> Self {
        TraceBuilder::new(ObsConfig::disabled(), "")
    }

    /// Whether this builder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record the engine's partition fan-out.
    pub fn set_partitions(&mut self, partitions: usize) {
        if self.enabled {
            self.partitions = partitions as u64;
        }
    }

    /// Start a stage clock (no-op when disabled).
    pub fn start(&self) -> StageTimer {
        StageTimer(if self.enabled {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Close a stage: record its wall time and row/batch movement.
    pub fn finish_stage(
        &mut self,
        timer: StageTimer,
        stage: &str,
        rows_in: usize,
        rows_out: usize,
        batches: usize,
    ) {
        if !self.enabled {
            return;
        }
        self.stages.push(StageTrace {
            stage: stage.to_string(),
            wall_ns: timer.elapsed_ns(),
            rows_in: rows_in as u64,
            rows_out: rows_out as u64,
            batches: batches as u64,
        });
    }

    /// The builder's own registry shard, for engine-level counters and
    /// gauges. Callers on hot paths should guard with
    /// [`TraceBuilder::is_enabled`]; writes to a disabled builder are kept
    /// but never surface.
    pub fn registry(&mut self) -> &mut MetricRegistry {
        &mut self.registry
    }

    /// Fold a per-worker registry shard into the trace.
    pub fn merge_registry(&mut self, shard: MetricRegistry) {
        if self.enabled {
            self.registry.merge(shard);
        }
    }

    /// Finish: `Some(QueryTrace)` when enabled, `None` otherwise.
    pub fn finish(self) -> Option<QueryTrace> {
        if !self.enabled {
            return None;
        }
        Some(QueryTrace {
            executor: self.executor,
            partitions: self.partitions,
            stages: self.stages,
            counters: self.registry.counter_entries(),
            gauges: self.registry.gauge_entries(),
            histograms: self.registry.histogram_snapshots(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_builder_produces_none() {
        let mut tb = TraceBuilder::disabled();
        let t = tb.start();
        assert_eq!(t.elapsed_ns(), 0);
        tb.finish_stage(t, "train", 10, 10, 1);
        tb.set_partitions(8);
        tb.registry().add("tasks", 5);
        assert!(!tb.is_enabled());
        assert!(tb.finish().is_none());
    }

    #[test]
    fn enabled_builder_records_stages_in_order() {
        let mut tb = TraceBuilder::new(ObsConfig::enabled(), "one-shot");
        tb.set_partitions(4);
        let t = tb.start();
        tb.finish_stage(t, "train", 100, 100, 1);
        let t = tb.start();
        tb.finish_stage(t, "score", 100, 7, 1);
        tb.registry().add("pool_tasks", 4);
        tb.registry().set_gauge("workers", 4.0);

        let trace = tb.finish().expect("enabled builder yields a trace");
        assert_eq!(trace.executor, "one-shot");
        assert_eq!(trace.partitions, 4);
        assert_eq!(
            trace.stages.iter().map(|s| s.stage.as_str()).collect::<Vec<_>>(),
            vec!["train", "score"]
        );
        assert_eq!(trace.stage("score").unwrap().rows_out, 7);
        assert!(trace.stage("explain").is_none());
        assert_eq!(trace.counter("pool_tasks"), 4);
        assert_eq!(trace.counter("missing"), 0);
        assert_eq!(trace.gauge("workers"), Some(4.0));
        assert!(trace.histogram("none").is_none());
        assert!(trace.total_stage_ns() == trace.stages.iter().map(|s| s.wall_ns).sum::<u64>());
    }

    #[test]
    fn worker_shards_fold_into_the_trace() {
        let mut tb = TraceBuilder::new(ObsConfig::enabled(), "coordinated");
        for w in 0..3u64 {
            let mut shard = MetricRegistry::new();
            shard.add("pool_tasks", w + 1);
            shard.record_ns("chunk_ns", 50 * (w + 1));
            tb.merge_registry(shard);
        }
        let trace = tb.finish().unwrap();
        assert_eq!(trace.counter("pool_tasks"), 6);
        let h = trace.histogram("chunk_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 300);
    }
}
