//! Coordination-free telemetry for MacroBase-RS.
//!
//! The deployment story behind MacroBase (Section 6) is operators watching
//! fast data streams, yet the pipeline itself is normally a black box. This
//! crate makes it observable without giving up the coordination-avoidance
//! discipline the engines are built on: every metric here is a *monoid* —
//! counters add, histogram buckets add, gauges resolve by update count — so
//! per-worker [`MetricRegistry`] shards are written with no locks and no
//! shared cache lines, then folded together with the same
//! [`mb_sketch::Mergeable`] algebra the sketches use.
//!
//! The pieces:
//!
//! * [`MetricRegistry`] — a named bag of monotonic counters, last-writer
//!   gauges, and log-bucketed [`LatencyHistogram`]s. One per worker/shard;
//!   merge the shards when the scatter joins.
//! * [`TraceBuilder`] / [`StageTimer`] — a span API the executors use to
//!   time pipeline stages (`ingest → encode → train → score → explain →
//!   merge`). Disabled builders compile down to a branch and no clock reads.
//! * [`QueryTrace`] / [`StageTrace`] — the immutable record attached to a
//!   finished report (`MdpReport::trace`), wire-round-tripped by
//!   `macrobase_core::wire`.
//! * [`export`] — a JSON-lines exporter over the vendored `serde_json`, for
//!   the `--trace` flag on the reproduction binaries.
//!
//! Everything is off by default: [`ObsConfig::default`] is disabled, and a
//! disabled [`TraceBuilder`] produces `None`, so blessed baseline reports
//! stay byte-identical.
//!
//! # Overhead budget
//!
//! With telemetry enabled, the executors add two `Instant::now()` calls per
//! stage (a handful of stages per query) plus one registry fold per scatter
//! — the CI gate on `table3_simple_queries --trace` holds the end-to-end
//! cost under 3% of query wall time. Disabled, the cost is a boolean test.

pub mod export;
mod histogram;
mod registry;
mod trace;

pub use histogram::{LatencyHistogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{merge_shards, GaugeValue, MetricRegistry};
pub use trace::{QueryTrace, StageTimer, StageTrace, TraceBuilder};

/// Telemetry switches carried by an analysis configuration.
///
/// Default-off: a default `ObsConfig` disables every collector, and reports
/// produced under it carry `trace: None`, byte-identical to pre-telemetry
/// output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Collect per-stage query traces and engine counters.
    pub enabled: bool,
}

impl ObsConfig {
    /// Telemetry on: executors attach a [`QueryTrace`] to their reports.
    pub fn enabled() -> Self {
        ObsConfig { enabled: true }
    }

    /// Telemetry off (the default).
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Whether any collector is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Canonical pipeline stage names used in [`StageTrace::stage`].
///
/// The executors also emit auxiliary spans (e.g. `"flatten"` for row →
/// columnar materialization); these six are the stable taxonomy shared with
/// the self-telemetry scenario.
pub mod stage {
    /// Draining rows out of an `Ingestor` source.
    pub const INGEST: &str = "ingest";
    /// Attribute dictionary encoding (row attributes → interned item ids).
    pub const ENCODE: &str = "encode";
    /// Fitting the estimator (MAD / MCD training sample).
    pub const TRAIN: &str = "train";
    /// Scoring points and resolving the percentile threshold.
    pub const SCORE: &str = "score";
    /// Risk-ratio explanation mining over the encoded outliers.
    pub const EXPLAIN: &str = "explain";
    /// Cross-partition merge (scores, labels, or explanation state).
    pub const MERGE: &str = "merge";
    /// The canonical stage taxonomy, in pipeline order.
    pub const ALL: [&str; 6] = [INGEST, ENCODE, TRAIN, SCORE, EXPLAIN, MERGE];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_config_defaults_off() {
        assert!(!ObsConfig::default().is_enabled());
        assert!(ObsConfig::enabled().is_enabled());
        assert!(!ObsConfig::disabled().is_enabled());
    }

    #[test]
    fn stage_taxonomy_is_ordered_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in stage::ALL {
            assert!(seen.insert(name), "duplicate stage {name}");
        }
        assert_eq!(stage::ALL[0], stage::INGEST);
        assert_eq!(stage::ALL[5], stage::MERGE);
    }
}
