//! Figure 10 (Appendix D): MCD train + score throughput versus metric
//! dimensionality (Gaussian data).

use mb_bench::{arg_usize, emit_json, human_count, throughput, timed};
use mb_stats::mcd::McdEstimator;
use mb_stats::rand_ext::{normal, SplitMix64};
use mb_stats::Estimator;

fn main() {
    let n = arg_usize("--points", 20_000);
    println!("Figure 10: MCD throughput vs metric dimension ({n} Gaussian points)");
    println!("{:>10} {:>14} {:>14}", "dimension", "train+score/s", "seconds");
    for &dim in &[2usize, 4, 8, 16, 32, 64, 128] {
        let mut rng = SplitMix64::new(dim as u64);
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        let (_, seconds) = timed(|| {
            let mut est = McdEstimator::with_defaults();
            est.train(&data).expect("train failed");
            let mut acc = 0.0;
            for row in &data {
                acc += est.score(row).unwrap_or(0.0);
            }
            acc
        });
        let tput = throughput(n, seconds);
        println!("{dim:>10} {:>14} {seconds:>14.3}", human_count(tput));
        emit_json(
            "fig10",
            serde_json::json!({"dimension": dim, "points_per_second": tput, "seconds": seconds}),
        );
    }
    println!(
        "\nExpected shape (paper): throughput decreases roughly linearly (on a log scale) with\n\
         dimensionality, motivating dimensionality reduction ahead of MCD."
    );
}
