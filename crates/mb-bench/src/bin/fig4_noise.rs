//! Figure 4: precision/recall (F1) of MDP explanations under label and
//! measurement noise, for several device counts.
//!
//! The workload is the synthetic device dataset of Section 6.1: readings from
//! outlying devices are drawn from N(70,10), others from N(10,10). The
//! reported F1 is over the set of device ids named by MDP's explanations. As
//! in the paper's setup, the classification percentile tracks the anomalous
//! mass (label noise makes more readings anomalous), so the risk-ratio filter
//! is what determines explanation quality.

use macrobase_core::query::{Executor, MdpQuery};
use mb_bench::{arg_usize, emit_json, records_to_points};
use mb_explain::ExplanationConfig;
use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};
use mb_scenario::eval;

fn run_one(num_devices: usize, num_points: usize, label_noise: f64, measurement_noise: f64) -> f64 {
    let outlying_fraction = 0.01;
    let workload = device_workload(&DeviceWorkloadConfig {
        num_points,
        num_devices,
        outlying_device_fraction: outlying_fraction,
        label_noise,
        measurement_noise,
        ..DeviceWorkloadConfig::default()
    });
    let records: Vec<mb_ingest::Record> = workload.records.iter().map(|r| r.record.clone()).collect();
    let points = records_to_points(&records);
    let anomalous_mass = (label_noise * (1.0 - outlying_fraction)
        + (1.0 - label_noise) * outlying_fraction
        + 0.5 * measurement_noise)
        .clamp(outlying_fraction, 0.6);
    let mut query = MdpQuery::builder()
        .target_percentile(1.0 - anomalous_mass)
        .explanation(ExplanationConfig::new(0.001, 3.0))
        .attribute_names(vec!["device_id".to_string()])
        .build()
        .expect("query construction failed");
    let report = match query.execute(&Executor::OneShot, &points) {
        Ok(r) => r,
        Err(_) => return 0.0,
    };
    let reported = eval::reported_values(&report.explanations);
    eval::value_f1(&reported, &workload.outlying_devices)
}

fn main() {
    let num_points = arg_usize("--points", 100_000);
    let device_counts = [6_400usize, 12_800, 25_600];
    let noise_levels = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    println!("Figure 4 (left): F1 vs label noise, {num_points} points");
    println!("{:>12} {:>10} {:>10} {:>10}", "label noise", "6400", "12800", "25600");
    for &noise in &noise_levels {
        let mut row = format!("{noise:>12.2}");
        for &devices in &device_counts {
            let f1 = run_one(devices, num_points, noise, 0.0);
            row.push_str(&format!(" {f1:>10.3}"));
            emit_json(
                "fig4_label_noise",
                serde_json::json!({"devices": devices, "noise": noise, "f1": f1}),
            );
        }
        println!("{row}");
    }

    println!("\nFigure 4 (right): F1 vs measurement noise, {num_points} points");
    println!("{:>12} {:>10} {:>10} {:>10}", "meas noise", "6400", "12800", "25600");
    for &noise in &noise_levels {
        let mut row = format!("{noise:>12.2}");
        for &devices in &device_counts {
            let f1 = run_one(devices, num_points, 0.0, noise);
            row.push_str(&format!(" {f1:>10.3}"));
            emit_json(
                "fig4_measurement_noise",
                serde_json::json!({"devices": devices, "noise": noise, "f1": f1}),
            );
        }
        println!("{row}");
    }
    println!(
        "\nExpected shape (paper): perfect F1 without noise; resilient to label noise up to\n\
         ~25% (the 3:1 ratio matching the risk-ratio threshold of 3); F1 degrades roughly\n\
         linearly with measurement noise, and larger device counts degrade sooner."
    );
}
