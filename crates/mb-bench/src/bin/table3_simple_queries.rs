//! Table 3 (Appendix C): throughput of the simple queries in an optimized
//! native implementation.
//!
//! The paper compares its Java prototype against hand-optimized C++ and
//! reports a 5–24× gap. A Rust/Java comparison is not reproducible here, so
//! this harness reports what the table is really about — how fast the simple
//! queries (LS, TS, ES, AS, FS, MS) run in a compiled, allocation-conscious
//! implementation — using the same row layout.

use macrobase_core::query::{Executor, MdpQuery};
use mb_bench::{arg_usize, emit_json, human_count, records_to_points, throughput, timed};
use mb_ingest::datasets::{generate_dataset, simple_query_view, DatasetId, DatasetScale};

fn main() {
    let divisor = arg_usize("--scale-divisor", 100);
    println!("Table 3: simple-query throughput in the native (Rust) implementation");
    println!("{:>8} {:>10} {:>16}", "query", "points", "points/s");
    for id in DatasetId::all() {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 13);
        let points = records_to_points(&simple_query_view(&dataset));
        let mut query = MdpQuery::builder()
            .skip_explanation()
            .build()
            .expect("query construction failed");
        let (_, seconds) =
            timed(|| query.execute(&Executor::OneShot, &points).expect("query failed"));
        let tput = throughput(points.len(), seconds);
        let name = format!("{}S", id.query_prefix());
        println!(
            "{:>8} {:>10} {:>16}",
            name,
            human_count(points.len() as f64),
            human_count(tput)
        );
        emit_json(
            "table3",
            serde_json::json!({"query": name, "points": points.len(), "points_per_second": tput}),
        );
    }
    println!(
        "\nPaper context: hand-optimized C++ reached 6–12M points/s on these simple queries,\n\
         5–24x faster than the JVM prototype; a compiled Rust implementation should land in\n\
         the same order of magnitude as the C++ numbers on comparable hardware."
    );
}
