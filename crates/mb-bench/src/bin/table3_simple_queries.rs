//! Table 3 (Appendix C): throughput of the simple queries in an optimized
//! native implementation.
//!
//! The paper compares its Java prototype against hand-optimized C++ and
//! reports a 5–24× gap. A Rust/Java comparison is not reproducible here, so
//! this harness reports what the table is really about — how fast the simple
//! queries (LS, TS, ES, AS, FS, MS) run in a compiled, allocation-conscious
//! implementation — using the same row layout.
//!
//! With `--trace`, every query also runs with telemetry enabled
//! (`ObsConfig::enabled()`): per-stage spans are printed as `TRACE:`
//! JSON-lines, the traced report is asserted equal to the untraced one with
//! the trace stripped, and both runs are timed best-of-3 so the telemetry
//! overhead can be reported — and gated with `--max-overhead-pct N`
//! (non-zero exit when the aggregate traced time exceeds untraced by more
//! than `N` percent). The emitted JSON rows keep the untraced shape, so the
//! same blessed baseline serves both modes.

use macrobase_core::query::{Executor, MdpQuery};
use macrobase_core::types::MdpReport;
use mb_bench::{arg_flag, arg_usize, emit_json, human_count, records_to_points, throughput, timed};
use mb_ingest::datasets::{generate_dataset, simple_query_view, DatasetId, DatasetScale};

/// Run one fresh query over `points`, `runs` times, returning the last
/// report and the best (minimum) wall time.
fn best_of(
    runs: usize,
    traced: bool,
    points: &[macrobase_core::types::Point],
) -> (MdpReport, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs.max(1) {
        let mut builder = MdpQuery::builder().skip_explanation();
        if traced {
            builder = builder.traced();
        }
        let mut query = builder.build().expect("query construction failed");
        let (report, seconds) =
            timed(|| query.execute(&Executor::OneShot, points).expect("query failed"));
        best = best.min(seconds);
        last = Some(report);
    }
    (last.expect("at least one run"), best)
}

fn main() {
    let divisor = arg_usize("--scale-divisor", 100);
    let trace_mode = arg_flag("--trace");
    let max_overhead_pct = arg_usize("--max-overhead-pct", 0);
    // Timing comparisons use best-of-3; plain runs keep the single-shot
    // behaviour the blessed baselines were recorded with.
    let runs = if trace_mode { 3 } else { 1 };

    println!("Table 3: simple-query throughput in the native (Rust) implementation");
    println!("{:>8} {:>10} {:>16}", "query", "points", "points/s");
    let mut untraced_total = 0.0;
    let mut traced_total = 0.0;
    for id in DatasetId::all() {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 13);
        let points = records_to_points(&simple_query_view(&dataset));
        let name = format!("{}S", id.query_prefix());

        let (report, seconds) = best_of(runs, false, &points);
        untraced_total += seconds;
        let tput = throughput(points.len(), seconds);
        println!(
            "{:>8} {:>10} {:>16}",
            name,
            human_count(points.len() as f64),
            human_count(tput)
        );

        let mut row = serde_json::json!({
            "query": name,
            "points": points.len(),
            "points_per_second": tput,
        });
        if trace_mode {
            let (mut traced_report, traced_seconds) = best_of(runs, true, &points);
            traced_total += traced_seconds;
            let trace = traced_report
                .trace
                .take()
                .expect("traced run must attach a trace");
            assert_eq!(
                traced_report, report,
                "{name}: tracing changed the report"
            );
            for line in mb_obs::export::trace_to_json_lines(&trace).lines() {
                println!("TRACE: {line}");
            }
            if let Some(obj) = row.as_object_mut() {
                // `_ms` keys are volatile to the diff harness: present only
                // in traced runs, ignored when diffing against the untraced
                // baseline.
                obj.insert(
                    "untraced_ms".to_string(),
                    serde_json::Value::from(seconds * 1e3),
                );
                obj.insert(
                    "traced_ms".to_string(),
                    serde_json::Value::from(traced_seconds * 1e3),
                );
            }
        }
        emit_json("table3", row);
    }

    if trace_mode {
        let overhead_pct = if untraced_total > 0.0 {
            (traced_total - untraced_total) / untraced_total * 100.0
        } else {
            0.0
        };
        println!(
            "\ntelemetry overhead: untraced {:.1}ms, traced {:.1}ms ({overhead_pct:+.2}%)",
            untraced_total * 1e3,
            traced_total * 1e3
        );
        if max_overhead_pct > 0 && overhead_pct > max_overhead_pct as f64 {
            eprintln!(
                "FAIL: telemetry overhead {overhead_pct:.2}% exceeds the {max_overhead_pct}% budget"
            );
            std::process::exit(1);
        }
    }

    println!(
        "\nPaper context: hand-optimized C++ reached 6–12M points/s on these simple queries,\n\
         5–24x faster than the JVM prototype; a compiled Rust implementation should land in\n\
         the same order of magnitude as the C++ numbers on comparable hardware."
    );
}
