//! Compare a harness binary's `JSON:` rows against a blessed baseline file,
//! so accuracy regressions fail CI instead of going unnoticed.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mb-bench --bin fig11_scaleout \
//!   | cargo run --release -p mb-bench --bin diff_harness -- \
//!       --baseline crates/mb-bench/baselines/fig11_scaleout.jsonl
//! ```
//!
//! The baseline is one JSON object per line (capture it by piping the
//! binary's output through `grep '^JSON: ' | sed 's/^JSON: //'`). Rows are
//! compared in order, key by key:
//!
//! * **volatile keys** (wall clock and anything derived from it — `seconds`,
//!   `*_per_s`, `*throughput*`) are checked for presence only;
//! * **strings/booleans** must match exactly;
//! * **numbers** must agree within a tolerance: `|a - b| <= max(abs_tol,
//!   rel_tol * max(|a|, |b|))` with `rel_tol = abs_tol = 0.15` by default
//!   (override with `--rel-tol` / `--abs-tol`). Deterministic metrics like
//!   Jaccard, F1, and explanation counts sit well inside this; real
//!   regressions (a mode losing half its accuracy) blow through it.
//!
//! Exit status: 0 when every row matches, 1 otherwise (with one line per
//! mismatch on stderr).

use serde_json::Value;
use std::io::Read;
use std::process::ExitCode;

/// Keys whose values depend on wall clock and may vary freely across runs.
/// Telemetry keys (`trace`, stage `*_ms`/`*_ns` timings, idle counters) are
/// volatile too: a traced run diffs cleanly against an untraced baseline.
fn is_volatile(key: &str) -> bool {
    key == "seconds"
        || key.ends_with("_seconds")
        || key.ends_with("_per_s")
        || key.ends_with("_per_second")
        || key.ends_with("_us")
        || key.ends_with("_ms")
        || key.ends_with("_ns")
        || key.contains("throughput")
        || key.contains("speedup")
        || key.contains("idle")
        || key == "trace"
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_rows(source: &str, label: &str, text: &str) -> Result<Vec<Value>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let json = match source {
            // Harness output: rows are prefixed; everything else is prose.
            "stream" => match line.strip_prefix("JSON: ") {
                Some(rest) => rest,
                None => continue,
            },
            // Baseline file: every non-empty line is a row.
            _ => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                trimmed
            }
        };
        let value = serde_json::from_str(json)
            .map_err(|e| format!("{label} line {}: {e}", lineno + 1))?;
        rows.push(value);
    }
    Ok(rows)
}

fn numbers_match(actual: f64, expected: f64, rel_tol: f64, abs_tol: f64) -> bool {
    if actual == expected {
        return true; // covers ±inf and exact integers
    }
    let scale = actual.abs().max(expected.abs());
    (actual - expected).abs() <= abs_tol.max(rel_tol * scale)
}

fn compare_rows(
    index: usize,
    actual: &Value,
    expected: &Value,
    rel_tol: f64,
    abs_tol: f64,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    let (Some(actual), Some(expected)) = (actual.as_object(), expected.as_object()) else {
        return vec![format!("row {index}: rows must be JSON objects")];
    };
    let mut keys: Vec<&String> = expected.iter().map(|(k, _)| k).collect();
    for (key, _) in actual.iter() {
        // Volatile keys may appear only in the actual run (e.g. the `*_ms`
        // timings a traced run adds on top of an untraced baseline's shape).
        if expected.get(key).is_none() && !is_volatile(key) {
            mismatches.push(format!("row {index}: unexpected key {key:?}"));
        }
    }
    keys.sort();
    for key in keys {
        let expected_value = expected.get(key).expect("key from iteration");
        let Some(actual_value) = actual.get(key) else {
            mismatches.push(format!("row {index}: missing key {key:?}"));
            continue;
        };
        if is_volatile(key) {
            continue;
        }
        let matches = match (actual_value.as_f64(), expected_value.as_f64()) {
            (Some(a), Some(e)) => numbers_match(a, e, rel_tol, abs_tol),
            _ => actual_value == expected_value,
        };
        if !matches {
            mismatches.push(format!(
                "row {index}, key {key:?}: got {actual_value}, baseline {expected_value}"
            ));
        }
    }
    mismatches
}

fn main() -> ExitCode {
    let Some(baseline_path) = arg_value("--baseline") else {
        eprintln!("diff_harness: required argument --baseline <file> missing");
        return ExitCode::FAILURE;
    };
    let rel_tol: f64 = arg_value("--rel-tol")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let abs_tol: f64 = arg_value("--abs-tol")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("diff_harness: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdin_text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut stdin_text) {
        eprintln!("diff_harness: cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }

    let expected = match parse_rows("baseline", &baseline_path, &baseline_text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("diff_harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let actual = match parse_rows("stream", "stdin", &stdin_text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("diff_harness: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut mismatches = Vec::new();
    if actual.len() != expected.len() {
        mismatches.push(format!(
            "row count differs: got {} rows, baseline has {}",
            actual.len(),
            expected.len()
        ));
    }
    for (index, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        mismatches.extend(compare_rows(index, a, e, rel_tol, abs_tol));
    }

    if mismatches.is_empty() {
        println!(
            "diff_harness: {} rows match {baseline_path} (rel tol {rel_tol}, abs tol {abs_tol})",
            actual.len()
        );
        ExitCode::SUCCESS
    } else {
        for m in &mismatches {
            eprintln!("diff_harness: MISMATCH {m}");
        }
        eprintln!(
            "diff_harness: {} mismatch(es) against {baseline_path}",
            mismatches.len()
        );
        ExitCode::FAILURE
    }
}
