//! Figure 11 (Appendix D): naïve shared-nothing scale-out — normalized
//! throughput and explanation F-score versus the number of partitions.
//!
//! Note: the paper's testbed had 48 cores; this harness runs wherever it is
//! invoked, so on a single-core machine the wall-clock "speedup" stays flat
//! while the accuracy half of the figure (each partition sees only a sample
//! of the data and explanations are not coordinated) reproduces fully.

use macrobase_core::oneshot::MdpConfig;
use macrobase_core::parallel::run_partitioned;
use mb_bench::{arg_usize, emit_json, records_to_points, timed};
use mb_explain::ExplanationConfig;
use mb_ingest::synthetic::{device_f1_score, device_workload, DeviceWorkloadConfig};

fn main() {
    let num_points = arg_usize("--points", 200_000);
    let workload = device_workload(&DeviceWorkloadConfig {
        num_points,
        num_devices: 1_000,
        outlying_device_fraction: 0.01,
        ..DeviceWorkloadConfig::default()
    });
    let records: Vec<mb_ingest::Record> =
        workload.records.iter().map(|r| r.record.clone()).collect();
    let points = records_to_points(&records);
    let config = MdpConfig {
        explanation: ExplanationConfig::new(0.001, 3.0),
        attribute_names: vec!["device_id".to_string()],
        ..MdpConfig::default()
    };

    println!(
        "Figure 11: shared-nothing scale-out ({num_points} points, {} cores available)",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    );
    println!(
        "{:>12} {:>12} {:>14} {:>12}",
        "partitions", "seconds", "norm. thrpt", "F1"
    );
    let mut baseline_seconds = None;
    for &partitions in &[1usize, 2, 4, 8, 16, 32, 48] {
        let (result, seconds) =
            timed(|| run_partitioned(&points, partitions, &config).expect("run failed"));
        let baseline = *baseline_seconds.get_or_insert(seconds);
        let normalized = baseline / seconds;
        let reported: Vec<String> = result
            .merged_explanations
            .iter()
            .flat_map(|e| e.attributes.iter())
            .filter_map(|a| a.split('=').nth(1).map(|s| s.to_string()))
            .collect();
        let f1 = device_f1_score(&reported, &workload.outlying_devices);
        println!("{partitions:>12} {seconds:>12.3} {normalized:>14.2} {f1:>12.3}");
        emit_json(
            "fig11",
            serde_json::json!({
                "partitions": partitions,
                "seconds": seconds,
                "normalized_throughput": normalized,
                "f1": f1,
            }),
        );
    }
    println!(
        "\nExpected shape (paper): throughput scales linearly with cores (flat here on a\n\
         single-core host) while the explanation F-score degrades as partitions shrink,\n\
         because each partition trains and summarizes on a fraction of the data."
    );
}
