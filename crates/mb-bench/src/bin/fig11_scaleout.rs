//! Figure 11 (Appendix D): scale-out — naïve shared-nothing partitioning
//! versus coordinated (mergeable-state) partitioning.
//!
//! For each partition count the harness runs both modes and reports wall
//! clock, normalized throughput, explanation F1 against the planted devices,
//! and the Jaccard similarity of the explanation set against the one-shot
//! reference. The paper's naïve mode scales linearly but its accuracy
//! degrades with partitions (per-partition models and thresholds, rendered
//! string union); the coordinated mode shares one trained model and merges
//! pre-render explanation state, reproducing the one-shot explanation set
//! (Jaccard 1.0) at every partition count.
//!
//! Note: the paper's testbed had 48 cores; this harness runs wherever it is
//! invoked, so on a small machine wall-clock "speedup" flattens while the
//! accuracy half of the figure reproduces fully.

use macrobase_core::query::{AnalysisConfig, Executor, MdpQuery};
use mb_bench::{
    arg_usize, configure_threads_from_args, emit_json, records_to_points, throughput, timed,
};
use mb_explain::ExplanationConfig;
use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};
use mb_scenario::eval::{combination_set, jaccard, reported_values, value_f1};

/// Scatter `work` over `chunks` with one scoped thread per chunk — the
/// executor strategy the partitioned modes used before `mb-pool` existed,
/// kept as the baseline the resident pool is measured against.
fn spawn_scatter<I, O, F>(chunks: Vec<I>, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let work = &work;
    std::thread::scope(|scope| { // mb-lint: allow(no-adhoc-threads) -- baseline measures spawn cost
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || work(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    })
}

/// Measure per-call scatter cost (µs) of both executor strategies on a
/// cheap chunk workload, where submission overhead — not compute —
/// dominates. Reports rows for `JSON:` diffing and returns nothing.
fn report_scatter_overhead(partitions: usize) {
    println!("\nscatter overhead: per-call spawn vs resident pool ({partitions} partitions)");
    println!(
        "{:>13} {:>12} {:>12} {:>9}",
        "batch points", "spawn µs", "pool µs", "speedup"
    );
    for &batch in &[1_000usize, 10_000, 100_000] {
        let data: Vec<f64> = (0..batch).map(|i| (i % 97) as f64).collect();
        let chunk_size = batch.div_ceil(partitions).max(1);
        let chunks = || -> Vec<&[f64]> { data.chunks(chunk_size).collect() };
        let work = |chunk: &[f64]| -> f64 { chunk.iter().map(|x| x * x).sum() };
        let iterations = (2_000_000 / batch).clamp(20, 2_000);

        // Warm both paths, then time `iterations` scatters of each.
        let _ = spawn_scatter(chunks(), work);
        let _ = mb_pool::map_vec(chunks(), work);
        let (_, spawn_seconds) = timed(|| {
            for _ in 0..iterations {
                std::hint::black_box(spawn_scatter(chunks(), work));
            }
        });
        let (_, pool_seconds) = timed(|| {
            for _ in 0..iterations {
                std::hint::black_box(mb_pool::map_vec(chunks(), work));
            }
        });
        let spawn_us = spawn_seconds * 1e6 / iterations as f64;
        let pool_us = pool_seconds * 1e6 / iterations as f64;
        let speedup = spawn_us / pool_us.max(1e-9);
        println!("{batch:>13} {spawn_us:>12.1} {pool_us:>12.1} {speedup:>8.1}x");
        emit_json(
            "fig11",
            serde_json::json!({
                "section": "scatter_overhead",
                "batch_points": batch,
                "partitions": partitions,
                "spawn_scatter_us": spawn_us,
                "pool_scatter_us": pool_us,
                "pool_speedup": speedup,
            }),
        );
    }
}

fn main() {
    let threads = configure_threads_from_args();
    let num_points = arg_usize("--points", 200_000);
    let workload = device_workload(&DeviceWorkloadConfig {
        num_points,
        num_devices: 1_000,
        outlying_device_fraction: 0.01,
        ..DeviceWorkloadConfig::default()
    });
    let records: Vec<mb_ingest::Record> =
        workload.records.iter().map(|r| r.record.clone()).collect();
    let points = records_to_points(&records);
    let config = AnalysisConfig {
        explanation: ExplanationConfig::new(0.001, 3.0),
        attribute_names: vec!["device_id".to_string()],
        ..AnalysisConfig::default()
    };

    // One-shot reference: the semantics both modes are measured against.
    let (reference, reference_seconds) = timed(|| {
        MdpQuery::new(config.clone())
            .execute(&Executor::OneShot, &points)
            .expect("one-shot failed")
    });
    let reference_set = combination_set(&reference.explanations);

    println!(
        "Figure 11: scale-out, naive vs coordinated ({num_points} points, {} cores available, {threads}-thread pool)",
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    );
    println!(
        "one-shot reference: {:.3}s, {} explanations",
        reference_seconds,
        reference.explanations.len()
    );
    println!(
        "{:>12} {:>13} {:>10} {:>13} {:>9} {:>8}",
        "partitions", "mode", "seconds", "norm. thrpt", "Jaccard", "F1"
    );
    let mut baseline_seconds = None;
    for &partitions in &[1usize, 2, 4, 8, 16, 32, 48] {
        let (naive, naive_seconds) = timed(|| {
            MdpQuery::new(config.clone())
                .execute(&Executor::NaivePartitioned { partitions }, &points)
                .expect("naive run failed")
        });
        let (coordinated, coordinated_seconds) = timed(|| {
            MdpQuery::new(config.clone())
                .execute(&Executor::Coordinated { partitions }, &points)
                .expect("coordinated run failed")
        });
        let baseline = *baseline_seconds.get_or_insert(naive_seconds);
        for (mode, explanations, seconds) in [
            ("naive", &naive.explanations, naive_seconds),
            ("coordinated", &coordinated.explanations, coordinated_seconds),
        ] {
            let normalized = baseline / seconds;
            let similarity = jaccard(&combination_set(explanations), &reference_set);
            let f1 = value_f1(&reported_values(explanations), &workload.outlying_devices);
            println!(
                "{partitions:>12} {mode:>13} {seconds:>10.3} {normalized:>13.2} {similarity:>9.3} {f1:>8.3}"
            );
            emit_json(
                "fig11",
                serde_json::json!({
                    "partitions": partitions,
                    "mode": mode,
                    "seconds": seconds,
                    "normalized_throughput": normalized,
                    "points_per_s": throughput(num_points, seconds),
                    "jaccard": similarity,
                    "f1": f1,
                }),
            );
        }
    }
    // Fixed partition count: the section measures submission overhead per
    // scatter call, and a constant chunk count keeps the JSON rows (and the
    // blessed baselines) invariant under `--threads` and machine size.
    report_scatter_overhead(8);

    println!(
        "\nExpected shape (paper + ROADMAP): both modes scale with cores (flat on a\n\
         single-core host). The naive mode's Jaccard vs one-shot degrades as partitions\n\
         shrink (per-partition models, thresholds, and support pruning); the coordinated\n\
         mode shares one model and merges pre-render state, holding Jaccard at 1.0 with\n\
         throughput within a constant factor of naive. The resident pool's per-call\n\
         scatter cost should sit well below the scoped-spawn baseline, most visibly on\n\
         the smallest batches where submission overhead dominates."
    );
}
