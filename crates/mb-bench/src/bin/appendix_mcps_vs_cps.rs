//! Appendix D: M-CPS-tree versus CPS-tree — streaming itemset maintenance
//! time and structure size on attribute streams of varying cardinality.
//!
//! The CPS-tree keeps a node for every item ever observed, so on
//! high-cardinality streams (Campaign/Disburse-like) it is dramatically
//! slower and larger than the M-CPS-tree, which only admits currently
//! frequent items.

use mb_bench::{arg_usize, emit_json, human_count, throughput, timed};
use mb_fpgrowth::cps::CpsTree;
use mb_fpgrowth::mcps::{McpsConfig, McpsTree};
use mb_ingest::synthetic::zipf_attribute_stream;

fn main() {
    let n = arg_usize("--points", 200_000);
    let window = 10_000usize;
    println!("Appendix D: M-CPS vs CPS tree ({n} transactions, window {window})");
    println!(
        "{:>12} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "cardinality", "MCPS tx/s", "CPS tx/s", "speedup", "MCPS nodes", "CPS nodes", "ratio"
    );
    for &cardinality in &[100usize, 1_000, 10_000, 50_000] {
        let stream_a = zipf_attribute_stream(n, cardinality, 1.1, 3);
        let stream_b = zipf_attribute_stream(n, cardinality, 1.1, 4);

        let mut mcps = McpsTree::new(McpsConfig {
            min_support_fraction: 0.001,
            decay_rate: 0.01,
            amc_stable_size: 10_000,
            amc_maintenance_period: 10_000,
        });
        let (_, mcps_seconds) = timed(|| {
            for i in 0..n {
                mcps.insert(&[stream_a[i], cardinality as u32 + stream_b[i]]);
                if i % window == window - 1 {
                    mcps.on_window_boundary();
                }
            }
        });

        let mut cps = CpsTree::new(0.01);
        let (_, cps_seconds) = timed(|| {
            for i in 0..n {
                cps.insert(&[stream_a[i], cardinality as u32 + stream_b[i]]);
                if i % window == window - 1 {
                    cps.on_window_boundary();
                }
            }
        });

        let mcps_tput = throughput(n, mcps_seconds);
        let cps_tput = throughput(n, cps_seconds);
        println!(
            "{:>12} {:>12} {:>12} {:>9.1}x {:>12} {:>12} {:>9.1}x",
            cardinality,
            human_count(mcps_tput),
            human_count(cps_tput),
            mcps_tput / cps_tput.max(1e-9),
            mcps.node_count(),
            cps.tree().node_count(),
            cps.tree().node_count() as f64 / mcps.node_count().max(1) as f64
        );
        emit_json(
            "appendix_mcps_vs_cps",
            serde_json::json!({
                "cardinality": cardinality,
                "mcps_tx_per_s": mcps_tput,
                "cps_tx_per_s": cps_tput,
                "mcps_nodes": mcps.node_count(),
                "cps_nodes": cps.tree().node_count(),
            }),
        );
    }
    println!(
        "\nExpected shape (paper): the CPS-tree is on average ~130x slower than the M-CPS-tree\n\
         across the dataset queries (over 1000x on the highest-cardinality ones), with the gap\n\
         growing with the number of distinct attribute values."
    );
}
