//! Table 5 + Section 6.3: running time of explanation strategies on the
//! complex queries — MacroBase's cardinality-aware strategy (MB) versus
//! unoptimized two-sided FPGrowth (FP), data cubing (Cube), decision trees of
//! depth 10 and 100 (DT10/DT100), and Apriori (AP).
//!
//! Each strategy receives the same pre-classified outlier/inlier transaction
//! sets so the comparison isolates explanation cost, as in the paper.

use macrobase_core::query::{Executor, MdpQuery};
use mb_bench::{arg_usize, emit_json, records_to_points, timed};
use mb_classify::Label;
use mb_explain::baselines::{apriori_explain, cube_explain, decision_tree_explain};
use mb_explain::batch::{naive_fpgrowth_explain, BatchExplainer};
use mb_explain::encoder::AttributeEncoder;
use mb_explain::ExplanationConfig;
use mb_fpgrowth::Item;
use mb_ingest::datasets::{generate_dataset, DatasetId, DatasetScale};

const TIMEOUT_SECONDS: f64 = 120.0;

fn classify_and_encode(
    points: &[macrobase_core::types::Point],
) -> (Vec<Vec<Item>>, Vec<Vec<Item>>) {
    // Use the MDP classifier once to produce labels, then encode attributes.
    let mut query = MdpQuery::builder()
        .skip_explanation()
        .retain_scores()
        .build()
        .expect("query construction failed");
    let report = query
        .execute(&Executor::OneShot, points)
        .expect("classification failed");
    let cutoff = report.score_cutoff.unwrap_or(f64::INFINITY);
    let mut encoder = AttributeEncoder::new();
    let mut outliers = Vec::new();
    let mut inliers = Vec::new();
    for (point, &score) in points.iter().zip(report.scores.iter()) {
        let items = encoder.encode_point(&point.attributes);
        let label = if score >= cutoff {
            Label::Outlier
        } else {
            Label::Inlier
        };
        if label.is_outlier() {
            outliers.push(items);
        } else {
            inliers.push(items);
        }
    }
    (outliers, inliers)
}

fn main() {
    let divisor = arg_usize("--scale-divisor", 500);
    let config = ExplanationConfig::new(0.001, 3.0).with_max_combination_size(3);
    println!(
        "Table 5: explanation running time (s) per complex query (rows scaled by 1/{divisor}; DNF = > {TIMEOUT_SECONDS}s, not attempted)"
    );
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "query", "MB", "FP", "Cube", "DT10", "DT100", "AP"
    );
    for id in DatasetId::all() {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 23);
        let points = records_to_points(&dataset.records);
        let (outliers, inliers) = classify_and_encode(&points);
        let name = format!("{}C", id.query_prefix());

        let (mb_result, mb) = timed(|| BatchExplainer::new(config).explain(&outliers, &inliers));
        let (_, fp) = timed(|| naive_fpgrowth_explain(&outliers, &inliers, &config));
        // Cubing enumerates every value combination; on the very wide queries
        // it is the strategy the paper reports as DNF — guard with a column
        // bound rather than waiting two minutes.
        let cube = if dataset.spec.complex_attributes <= 6 {
            let (_, t) = timed(|| cube_explain(&outliers, &inliers, &config));
            Some(t)
        } else {
            None
        };
        let (_, dt10) = timed(|| decision_tree_explain(&outliers, &inliers, 10, &config));
        let (_, dt100) = timed(|| decision_tree_explain(&outliers, &inliers, 100, &config));
        let (_, ap) = timed(|| apriori_explain(&outliers, &inliers, &config));

        let fmt = |value: Option<f64>| match value {
            Some(v) => format!("{v:.2}"),
            None => "DNF".to_string(),
        };
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name,
            fmt(Some(mb)),
            fmt(Some(fp)),
            fmt(cube),
            fmt(Some(dt10)),
            fmt(Some(dt100)),
            fmt(Some(ap))
        );
        emit_json(
            "table5",
            serde_json::json!({
                "query": name,
                "macrobase_s": mb,
                "fpgrowth_s": fp,
                "cube_s": cube,
                "dt10_s": dt10,
                "dt100_s": dt100,
                "apriori_s": ap,
                "macrobase_explanations": mb_result.len(),
            }),
        );
    }
    println!(
        "\nExpected shape (paper): MacroBase's cardinality-aware strategy is fastest on every\n\
         query (average ~3.2x over two-sided FPGrowth); cubing and Apriori are one to two\n\
         orders of magnitude slower (or DNF), and deep decision trees are the slowest finishers."
    );
}
