//! Figure 3: discriminative power of Z-score, MAD, and MCD under increasing
//! outlier contamination.
//!
//! For each contamination level the three estimators are trained on the full
//! (contaminated) sample and the mean score assigned to the true outlier
//! cluster is reported — robust estimators keep scoring the cluster highly
//! while the Z-score collapses.

use mb_bench::{arg_usize, emit_json};
use mb_ingest::synthetic::contamination_dataset;
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::zscore::ZScoreEstimator;
use mb_stats::Estimator;

fn mean_outlier_score<E: Estimator>(
    mut estimator: E,
    points: &[Vec<f64>],
    labels: &[bool],
    univariate: bool,
) -> f64 {
    let sample: Vec<Vec<f64>> = if univariate {
        points.iter().map(|p| vec![p[0]]).collect()
    } else {
        points.to_vec()
    };
    if estimator.train(&sample).is_err() {
        return f64::NAN;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, &is_outlier) in sample.iter().zip(labels.iter()) {
        if is_outlier {
            if let Ok(score) = estimator.score(p) {
                total += score;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn main() {
    let n = arg_usize("--points", 100_000);
    println!("Figure 3: mean outlier score vs contamination (n = {n})");
    println!("{:>14} {:>12} {:>12} {:>12}", "contamination", "MCD", "MAD", "Z-score");
    for step in 0..=10 {
        let contamination = step as f64 * 0.05;
        let (points, labels) = contamination_dataset(n, contamination, 42 + step as u64);
        if !labels.iter().any(|&o| o) {
            // No outliers drawn at 0 contamination: scores are undefined; report 0.
            println!("{contamination:>14.2} {:>12} {:>12} {:>12}", "-", "-", "-");
            emit_json(
                "fig3",
                serde_json::json!({"contamination": contamination, "mcd": 0.0, "mad": 0.0, "zscore": 0.0}),
            );
            continue;
        }
        let mcd = mean_outlier_score(McdEstimator::with_defaults(), &points, &labels, false);
        let mad = mean_outlier_score(MadEstimator::new(), &points, &labels, true);
        let z = mean_outlier_score(ZScoreEstimator::new(), &points, &labels, true);
        println!("{contamination:>14.2} {mcd:>12.2} {mad:>12.2} {z:>12.2}");
        emit_json(
            "fig3",
            serde_json::json!({
                "contamination": contamination,
                "mcd": mcd,
                "mad": mad,
                "zscore": z,
            }),
        );
    }
    println!(
        "\nExpected shape (paper): MAD and MCD stay high (robust up to 50% contamination),\n\
         the Z-score collapses under even modest contamination."
    );
}
