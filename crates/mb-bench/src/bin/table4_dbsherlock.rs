//! Table 4: MDP accuracy on the DBSherlock-style OLTP anomaly workload.
//!
//! For each of the nine anomaly types (A1–A9), for both TPC-C-like and
//! TPC-E-like baselines, the harness generates several independent clusters
//! (train + holdout, as in the paper) and reports top-1 / top-3 accuracy of
//! the anomalous hostname under the generic QS query and the per-anomaly QE
//! queries.

use macrobase_core::query::{EstimatorKind, Executor, MdpQuery};
use macrobase_core::types::Point;
use mb_bench::{arg_usize, configure_threads_from_args, emit_json};
use mb_explain::ExplanationConfig;
use mb_ingest::dbsherlock::{
    generate_cluster, qe_metric_indices, qs_metric_indices, AnomalyType, DbsherlockConfig,
    OltpWorkload,
};

/// Rank of the true host among the explanations (1-based; None if absent).
fn truth_rank(
    records: &[mb_ingest::Record],
    metric_indices: &[usize],
    truth: &str,
) -> Option<usize> {
    let points: Vec<Point> = records
        .iter()
        .map(|r| {
            Point::new(
                metric_indices.iter().map(|&i| r.metrics[i]).collect(),
                r.attributes.clone(),
            )
        })
        .collect();
    let mut query = MdpQuery::builder()
        .estimator(EstimatorKind::Mcd)
        .explanation(ExplanationConfig::new(0.02, 3.0))
        .attribute_names(vec!["hostname".to_string()])
        .training_sample_size(1_000)
        .build()
        .expect("query construction failed");
    let report = query.execute(&Executor::OneShot, &points).ok()?;
    mb_scenario::eval::truth_rank(&report.explanations, truth)
}

fn main() {
    // This harness is MCD-heavy (every cluster trains FastMCD), so it
    // exercises the nested restart × distance-pass parallelism; `--threads`
    // sizes the shared pool. Results are thread-count-invariant.
    let threads = configure_threads_from_args();
    let clusters_per_anomaly = arg_usize("--clusters", 3);
    let rows_per_server = arg_usize("--rows", 120);
    println!("pool workers: {threads}");

    for workload in [OltpWorkload::TpcC, OltpWorkload::TpcE] {
        let workload_name = match workload {
            OltpWorkload::TpcC => "TPC-C",
            OltpWorkload::TpcE => "TPC-E",
        };
        for (query_name, per_anomaly_metrics) in [("QS", false), ("QE", true)] {
            println!(
                "\nTable 4 — {workload_name}, {query_name} ({clusters_per_anomaly} clusters per anomaly):"
            );
            println!("{:>5} {:>14} {:>14}", "type", "top-1 correct", "top-3 correct");
            let mut total_top1 = 0usize;
            let mut total_top3 = 0usize;
            let mut total_runs = 0usize;
            for anomaly in AnomalyType::all() {
                let metric_indices = if per_anomaly_metrics {
                    qe_metric_indices(anomaly)
                } else {
                    qs_metric_indices()
                };
                let mut top1 = 0usize;
                let mut top3 = 0usize;
                for cluster in 0..clusters_per_anomaly {
                    let config = DbsherlockConfig {
                        rows_per_server,
                        workload,
                        seed: 0xD5 + cluster as u64 * 101,
                        ..DbsherlockConfig::default()
                    };
                    let experiment = generate_cluster(anomaly, &config);
                    match truth_rank(
                        &experiment.records,
                        &metric_indices,
                        &experiment.anomalous_host,
                    ) {
                        Some(1) => {
                            top1 += 1;
                            top3 += 1;
                        }
                        Some(rank) if rank <= 3 => top3 += 1,
                        _ => {}
                    }
                }
                total_top1 += top1;
                total_top3 += top3;
                total_runs += clusters_per_anomaly;
                println!(
                    "{:>5} {:>10}/{:<3} {:>10}/{:<3}",
                    anomaly.label(),
                    top1,
                    clusters_per_anomaly,
                    top3,
                    clusters_per_anomaly
                );
                emit_json(
                    "table4",
                    serde_json::json!({
                        "workload": workload_name,
                        "query": query_name,
                        "anomaly": anomaly.label(),
                        "top1": top1,
                        "top3": top3,
                        "clusters": clusters_per_anomaly,
                    }),
                );
            }
            println!(
                "overall: top-1 {:.1}%, top-3 {:.1}%",
                100.0 * total_top1 as f64 / total_runs as f64,
                100.0 * total_top3 as f64 / total_runs as f64
            );
        }
    }
    println!(
        "\nExpected shape (paper): QS achieves high top-1 accuracy on A1-A8 but fails on A9\n\
         (its correlated counters lie outside the generic metric set); QE, with per-anomaly\n\
         metrics, reaches (near-)perfect top-3 accuracy."
    );
}
