//! The accuracy gate: every labeled scenario through every executor.
//!
//! Runs the `mb-scenario` standard corpus (level shift, correlated
//! multi-metric failure, seasonal drift, cardinality explosion) through all
//! four `Executor` backends and scores each run against the planted ground
//! truth: point-level precision/recall/F1 over
//! `MdpReport::outlier_rows`, plus explanation-level Jaccard against the
//! guilty attribute combinations. Where the throughput reproductions gate
//! "is it still fast", this matrix gates "is it still *right*".
//!
//! Every metric column is deterministic — seeded generators, fixed
//! partition counts, single-threaded streaming ingestion — so CI diffs the
//! JSON rows against a blessed baseline with zero tolerance; only the
//! `points_per_s` column is volatile.
//!
//! Expected shape: one-shot and coordinated agree exactly (coordination is
//! lossless); naive partitioned degrades wherever the planted mass is not
//! uniform across partitions (the correlated failure window); streaming
//! trades a little recall for bounded memory (warmup rows are never
//! labeled) and adapts through the seasonal drift.

use macrobase_core::query::{Executor, StreamingOptions};
use mb_bench::{arg_usize, configure_threads_from_args, emit_json, throughput, timed};
use mb_scenario::{eval, standard_corpus};

/// The four backends under gate. Partition counts are pinned (never 0 =
/// "one per worker") so reports cannot vary with the host's core count.
fn executors() -> Vec<(&'static str, Executor)> {
    vec![
        ("one_shot", Executor::OneShot),
        ("coordinated_4", Executor::Coordinated { partitions: 4 }),
        ("naive_4", Executor::NaivePartitioned { partitions: 4 }),
        (
            "streaming",
            Executor::Streaming {
                options: StreamingOptions {
                    reservoir_size: 2_000,
                    decay_rate: 0.01,
                    decay_period: 10_000,
                    retrain_period: 2_000,
                    seed: 0xE75,
                },
            },
        ),
    ]
}

fn main() {
    let threads = configure_threads_from_args();
    let scale = arg_usize("--scale", 1);
    println!("pool workers: {threads}, corpus scale {scale}x");
    println!(
        "{:<24} {:<14} {:>8} {:>8} {:>10} {:>8} {:>8} {:>9}",
        "scenario", "executor", "planted", "flagged", "precision", "recall", "f1", "jaccard"
    );

    for scenario in standard_corpus(scale) {
        let generated = scenario.generate();
        for (executor_name, executor) in executors() {
            let mut query = scenario.query().expect("scenario query construction failed");
            let (result, seconds) = timed(|| query.execute(&executor, &generated.points));
            let report = result.expect("scenario query execution failed");
            let points = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
            let jaccard =
                eval::explanation_jaccard(&report.explanations, &generated.truth.guilty_attributes);
            println!(
                "{:<24} {:<14} {:>8} {:>8} {:>10.4} {:>8.4} {:>8.4} {:>9.4}",
                scenario.name(),
                executor_name,
                generated.truth.outlier_rows.len(),
                report.num_outliers,
                points.precision(),
                points.recall(),
                points.f1(),
                jaccard
            );
            emit_json(
                "quality_matrix",
                serde_json::json!({
                    "scenario": scenario.name(),
                    "executor": executor_name,
                    "points": report.num_points,
                    "planted": generated.truth.outlier_rows.len(),
                    "flagged": report.num_outliers,
                    "precision": points.precision(),
                    "recall": points.recall(),
                    "f1": points.f1(),
                    "explanation_jaccard": jaccard,
                    "points_per_s": throughput(report.num_points, seconds),
                }),
            );
        }
    }
}
