//! The accuracy gate: every labeled scenario through every executor.
//!
//! Runs the `mb-scenario` standard corpus (level shift, correlated
//! multi-metric failure, seasonal drift, cardinality explosion) through all
//! four `Executor` backends and scores each run against the planted ground
//! truth: point-level precision/recall/F1 over
//! `MdpReport::outlier_rows`, plus explanation-level Jaccard against the
//! guilty attribute combinations. Where the throughput reproductions gate
//! "is it still fast", this matrix gates "is it still *right*".
//!
//! Every metric column is deterministic — seeded generators, fixed
//! partition counts, single-threaded streaming ingestion — so CI diffs the
//! JSON rows against a blessed baseline with zero tolerance; only the
//! `points_per_s` column is volatile.
//!
//! Expected shape: one-shot and coordinated agree exactly (coordination is
//! lossless); naive partitioned degrades wherever the planted mass is not
//! uniform across partitions (the correlated failure window); streaming
//! trades a little recall for bounded memory (warmup rows are never
//! labeled) and adapts through the seasonal drift.

//! `--serve` runs the identical matrix *through* `mb-serve`: per scenario,
//! all four executor cells are submitted concurrently to a resident server
//! and the rows are emitted in the same canonical order. Because serving
//! never changes an answer, the rows diff clean against the same
//! direct-execution baseline.

use macrobase_core::query::{Executor, StreamingOptions};
use macrobase_core::types::MdpReport;
use mb_bench::{arg_flag, arg_usize, configure_threads_from_args, emit_json, throughput, timed};
use mb_scenario::{eval, standard_corpus, GeneratedScenario};
use mb_serve::{JobStatus, Priority, QuerySpec, ServeConfig, Server};
use std::time::Duration;

/// The four backends under gate. Partition counts are pinned (never 0 =
/// "one per worker") so reports cannot vary with the host's core count.
fn executors() -> Vec<(&'static str, Executor)> {
    vec![
        ("one_shot", Executor::OneShot),
        ("coordinated_4", Executor::Coordinated { partitions: 4 }),
        ("naive_4", Executor::NaivePartitioned { partitions: 4 }),
        (
            "streaming",
            Executor::Streaming {
                options: StreamingOptions {
                    reservoir_size: 2_000,
                    decay_rate: 0.01,
                    decay_period: 10_000,
                    retrain_period: 2_000,
                    seed: 0xE75,
                },
            },
        ),
    ]
}

/// Score one (scenario, executor) cell's report and print/emit its row —
/// identical shape whether the report came from a direct execution or
/// through the server.
fn emit_row(
    scenario_name: &str,
    executor_name: &str,
    generated: &GeneratedScenario,
    report: &MdpReport,
    seconds: f64,
) {
    let points = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
    let jaccard =
        eval::explanation_jaccard(&report.explanations, &generated.truth.guilty_attributes);
    println!(
        "{:<24} {:<14} {:>8} {:>8} {:>10.4} {:>8.4} {:>8.4} {:>9.4}",
        scenario_name,
        executor_name,
        generated.truth.outlier_rows.len(),
        report.num_outliers,
        points.precision(),
        points.recall(),
        points.f1(),
        jaccard
    );
    emit_json(
        "quality_matrix",
        serde_json::json!({
            "scenario": scenario_name,
            "executor": executor_name,
            "points": report.num_points,
            "planted": generated.truth.outlier_rows.len(),
            "flagged": report.num_outliers,
            "precision": points.precision(),
            "recall": points.recall(),
            "f1": points.f1(),
            "explanation_jaccard": jaccard,
            "points_per_s": throughput(report.num_points, seconds),
        }),
    );
}

fn main() {
    let threads = configure_threads_from_args();
    let scale = arg_usize("--scale", 1);
    let through_server = arg_flag("--serve");
    println!(
        "pool workers: {threads}, corpus scale {scale}x{}",
        if through_server {
            ", via mb-serve (4 concurrent submissions per scenario)"
        } else {
            ""
        }
    );
    println!(
        "{:<24} {:<14} {:>8} {:>8} {:>10} {:>8} {:>8} {:>9}",
        "scenario", "executor", "planted", "flagged", "precision", "recall", "f1", "jaccard"
    );

    if through_server {
        run_through_server(scale);
        return;
    }

    for scenario in standard_corpus(scale) {
        let generated = scenario.generate();
        for (executor_name, executor) in executors() {
            let mut query = scenario.query().expect("scenario query construction failed");
            let (result, seconds) = timed(|| query.execute(&executor, &generated.points));
            let report = result.expect("scenario query execution failed");
            emit_row(scenario.name(), executor_name, &generated, &report, seconds);
        }
    }
}

/// The accuracy matrix through the resident server: submit every executor
/// cell of a scenario concurrently, then collect and emit rows in the same
/// canonical order as direct execution. Metrics must equal the blessed
/// direct-execution baselines — the whole point of the mode.
fn run_through_server(scale: usize) {
    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    for scenario in standard_corpus(scale) {
        let generated = scenario.generate();
        let submitted = std::time::Instant::now();
        for (executor_name, executor) in executors() {
            let spec = QuerySpec {
                analysis: scenario.analysis(),
                executor,
            };
            server
                .submit(
                    &format!("{}/{executor_name}", scenario.name()),
                    spec,
                    generated.points.clone(),
                    Priority::Normal,
                )
                .expect("server rejected a matrix submission");
        }
        for (executor_name, _) in executors() {
            let id = format!("{}/{executor_name}", scenario.name());
            let status = server
                .poll(&id, Some(Duration::from_secs(600)))
                .expect("matrix job vanished");
            let JobStatus::Done(result) = status else {
                panic!("matrix job {id} did not finish: {status:?}");
            };
            // Wall time covers the whole concurrent batch; the throughput
            // column is volatile in diffs, correctness columns are not.
            let seconds = submitted.elapsed().as_secs_f64();
            emit_row(
                scenario.name(),
                executor_name,
                &generated,
                &result.report,
                seconds,
            );
        }
    }
}
