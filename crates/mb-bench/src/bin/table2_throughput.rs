//! Table 2: end-to-end throughput, number of explanations, and one-shot vs
//! streaming (EWS) explanation similarity across the six dataset queries
//! (simple `XS` and complex `XC` variants of each).

use macrobase_core::query::{Executor, MdpQuery, MdpQueryBuilder, StreamingOptions};
use macrobase_core::types::Point;
use mb_bench::{
    arg_usize, configure_threads_from_args, emit_json, human_count, records_to_points, throughput,
    timed,
};
use mb_explain::risk_ratio::jaccard_similarity;
use mb_explain::{Explanation, ExplanationConfig};
use mb_ingest::datasets::{generate_dataset, simple_query_view, DatasetId, DatasetScale};

fn to_explanations(report: &macrobase_core::types::MdpReport) -> Vec<Explanation> {
    report
        .explanations
        .iter()
        .map(|e| Explanation::new(e.items.clone(), e.stats.clone()))
        .collect()
}

struct QueryResult {
    oneshot_no_explain: f64,
    oneshot_with_explain: f64,
    ews_no_explain: f64,
    ews_with_explain: f64,
    oneshot_explanations: usize,
    ews_explanations: usize,
    jaccard: f64,
}

fn run_query(points: &[Point], explanation: ExplanationConfig) -> QueryResult {
    let query = |skip: bool| -> MdpQueryBuilder {
        let builder = MdpQuery::builder().explanation(explanation);
        if skip {
            builder.skip_explanation()
        } else {
            builder
        }
    };

    // One-shot, without and with explanation.
    let mut no_explain = query(true).build().expect("query construction failed");
    let (_, oneshot_no_explain_s) = timed(|| {
        no_explain
            .execute(&Executor::OneShot, points)
            .expect("one-shot failed")
    });
    let mut with_explain = query(false).build().expect("query construction failed");
    let (oneshot_report, oneshot_with_explain_s) = timed(|| {
        with_explain
            .execute(&Executor::OneShot, points)
            .expect("one-shot failed")
    });

    // Streaming (EWS), without and with explanation, observed incrementally
    // through a streaming session of the same query.
    let streaming_options = StreamingOptions {
        reservoir_size: 10_000,
        decay_rate: 0.01,
        decay_period: 100_000,
        retrain_period: 10_000,
        ..StreamingOptions::default()
    };
    let mut ews_skip = query(true)
        .build()
        .expect("query construction failed")
        .into_streaming(&streaming_options)
        .expect("streaming session failed");
    let (_, ews_no_explain_s) = timed(|| {
        for p in points {
            ews_skip.observe(p).expect("observe failed");
        }
    });
    let mut ews = query(false)
        .build()
        .expect("query construction failed")
        .into_streaming(&streaming_options)
        .expect("streaming session failed");
    let (ews_report, ews_with_explain_s) = timed(|| {
        for p in points {
            ews.observe(p).expect("observe failed");
        }
        ews.report()
    });

    QueryResult {
        oneshot_no_explain: throughput(points.len(), oneshot_no_explain_s),
        oneshot_with_explain: throughput(points.len(), oneshot_with_explain_s),
        ews_no_explain: throughput(points.len(), ews_no_explain_s),
        ews_with_explain: throughput(points.len(), ews_with_explain_s),
        oneshot_explanations: oneshot_report.explanations.len(),
        ews_explanations: ews_report.explanations.len(),
        jaccard: jaccard_similarity(
            &to_explanations(&oneshot_report),
            &to_explanations(&ews_report),
        ),
    }
}

fn main() {
    let threads = configure_threads_from_args();
    let divisor = arg_usize("--scale-divisor", 200);
    let explanation = ExplanationConfig::new(0.001, 3.0);
    println!(
        "Table 2: throughput and explanations per query (dataset rows scaled by 1/{divisor}, {threads}-thread pool)"
    );
    println!(
        "{:>6} {:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>7} {:>7} {:>8}",
        "query",
        "points",
        "1shot w/o",
        "EWS w/o",
        "1shot w/",
        "EWS w/",
        "#1shot",
        "#EWS",
        "Jaccard"
    );
    for id in DatasetId::all() {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 5);
        let simple_points = records_to_points(&simple_query_view(&dataset));
        let complex_points = records_to_points(&dataset.records);
        for (suffix, points) in [("S", &simple_points), ("C", &complex_points)] {
            let name = format!("{}{}", id.query_prefix(), suffix);
            let result = run_query(points, explanation);
            println!(
                "{:>6} {:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>7} {:>7} {:>8.2}",
                name,
                human_count(points.len() as f64),
                human_count(result.oneshot_no_explain),
                human_count(result.ews_no_explain),
                human_count(result.oneshot_with_explain),
                human_count(result.ews_with_explain),
                result.oneshot_explanations,
                result.ews_explanations,
                result.jaccard
            );
            emit_json(
                "table2",
                serde_json::json!({
                    "query": name,
                    "points": points.len(),
                    "oneshot_no_explain_pts_per_s": result.oneshot_no_explain,
                    "ews_no_explain_pts_per_s": result.ews_no_explain,
                    "oneshot_with_explain_pts_per_s": result.oneshot_with_explain,
                    "ews_with_explain_pts_per_s": result.ews_with_explain,
                    "oneshot_explanations": result.oneshot_explanations,
                    "ews_explanations": result.ews_explanations,
                    "jaccard": result.jaccard,
                }),
            );
        }
    }
    println!(
        "\nExpected shape (paper): several hundred thousand to a few million points/s per query;\n\
         simple queries are faster than complex ones; explanation adds roughly ~20% overhead;\n\
         streaming (EWS) typically returns fewer explanations than one-shot on high-cardinality\n\
         complex queries (low Jaccard) and nearly identical ones on low-cardinality queries."
    );
}
