//! Figure 8 (Appendix D): number of summaries produced and summarization
//! time as the minimum support and minimum risk ratio are varied, on the
//! MC- and EC-like complex queries.

use macrobase_core::query::{Executor, MdpQuery};
use mb_bench::{arg_usize, emit_json, records_to_points, timed};
use mb_explain::ExplanationConfig;
use mb_ingest::datasets::{generate_dataset, DatasetId, DatasetScale};

fn run(points: &[macrobase_core::types::Point], support: f64, risk: f64) -> (usize, f64) {
    let mut query = MdpQuery::builder()
        .explanation(ExplanationConfig::new(support, risk).with_max_combination_size(3))
        .build()
        .expect("query construction failed");
    let (report, seconds) =
        timed(|| query.execute(&Executor::OneShot, points).expect("query failed"));
    (report.explanations.len(), seconds)
}

fn main() {
    let divisor = arg_usize("--scale-divisor", 200);
    for id in [DatasetId::Cmt, DatasetId::Campaign] {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 11);
        let points = records_to_points(&dataset.records);
        let label = format!("{}C", id.query_prefix());

        println!("\nFigure 8 ({label}): varying minimum support (risk ratio fixed at 3)");
        println!("{:>12} {:>12} {:>10}", "min support", "#summaries", "time (s)");
        for &support in &[0.0001, 0.001, 0.01, 0.1, 0.5] {
            let (count, seconds) = run(&points, support, 3.0);
            println!("{support:>12.4} {count:>12} {seconds:>10.3}");
            emit_json(
                "fig8_support",
                serde_json::json!({"query": label, "min_support": support, "summaries": count, "seconds": seconds}),
            );
        }

        println!("\nFigure 8 ({label}): varying minimum risk ratio (support fixed at 0.1%)");
        println!("{:>12} {:>12} {:>10}", "min ratio", "#summaries", "time (s)");
        for &risk in &[0.01, 0.1, 1.0, 3.0, 10.0] {
            let (count, seconds) = run(&points, 0.001, risk);
            println!("{risk:>12.2} {count:>12} {seconds:>10.3}");
            emit_json(
                "fig8_risk_ratio",
                serde_json::json!({"query": label, "min_risk_ratio": risk, "summaries": count, "seconds": seconds}),
            );
        }
    }
    println!(
        "\nExpected shape (paper): lowering support below ~0.01% mostly increases the number of\n\
         summaries, not the runtime (time is dominated by the pass over the inliers); varying\n\
         the risk ratio changes the number of summaries by an order of magnitude while runtime\n\
         moves by less than ~40%."
    );
}
