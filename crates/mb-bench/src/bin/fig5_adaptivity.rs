//! Figure 5: adaptivity of the ADR versus a uniform reservoir and a
//! per-tuple exponentially biased reservoir on the scripted 400-second
//! stream (distribution shifts plus an arrival-rate spike).
//!
//! Reports, per 10-second interval: the mean value held by each reservoir
//! (Figure 5b) and the risk ratio MDP-style accounting assigns to device D0
//! using each sampler's notion of "recent typical value" (Figure 5a, here
//! summarized as whether D0's readings look outlying relative to the
//! reservoir contents).

use mb_bench::emit_json;
use mb_ingest::synthetic::adaptivity_stream;
use mb_sketch::adr::{AdaptableDampedReservoir, DecayPolicy};
use mb_sketch::biased::PerTupleBiasedReservoir;
use mb_sketch::reservoir::UniformReservoir;
use mb_sketch::StreamSampler;
use mb_stats::mad::MadEstimator;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Score D0's recent readings against a MAD model trained on the reservoir,
/// returning the fraction that look outlying (score > 3) — a proxy for the
/// risk ratio D0 would receive in Figure 5a.
fn d0_outlier_fraction(reservoir_sample: &[f64], recent_d0: &[f64]) -> f64 {
    if reservoir_sample.len() < 10 || recent_d0.is_empty() {
        return 0.0;
    }
    let mut mad = MadEstimator::new();
    if mad.train_univariate(reservoir_sample).is_err() {
        return 0.0;
    }
    let outlying = recent_d0
        .iter()
        .filter(|&&v| mad.score_value(v).map(|s| s > 3.0).unwrap_or(false))
        .count();
    outlying as f64 / recent_d0.len() as f64
}

fn main() {
    let base_rate = mb_bench::arg_usize("--rate", 500);
    let stream = adaptivity_stream(base_rate, 17);

    let capacity = 1_000;
    let mut uniform = UniformReservoir::new(capacity, 1);
    let mut per_tuple = PerTupleBiasedReservoir::new(capacity, 0.001, 1);
    let mut adr = AdaptableDampedReservoir::new(capacity, 0.5, DecayPolicy::Manual, 1);

    println!(
        "Figure 5: reservoir means and D0 outlier fraction per 10 s interval (base rate {base_rate}/s)"
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9} {:>12}",
        "time(s)", "uniform", "per-tuple", "ADR", "D0:unif", "D0:tuple", "D0:ADR", "arrivals/s"
    );

    let mut interval_start = 0.0;
    let mut recent_d0: Vec<f64> = Vec::new();
    let mut interval_count = 0usize;
    // Decay the ADR once per simulated second (time-based decay policy).
    let mut last_decay_second = 0u64;

    for reading in &stream {
        let second = reading.time_seconds as u64;
        if second > last_decay_second {
            for _ in last_decay_second..second {
                adr.decay();
            }
            last_decay_second = second;
        }
        uniform.observe(reading.value);
        per_tuple.observe(reading.value);
        adr.observe(reading.value);
        interval_count += 1;
        if reading.device == "D0" {
            recent_d0.push(reading.value);
        }

        if reading.time_seconds - interval_start >= 10.0 {
            let row = (
                interval_start,
                mean(uniform.sample()),
                mean(per_tuple.sample()),
                mean(adr.sample()),
                d0_outlier_fraction(uniform.sample(), &recent_d0),
                d0_outlier_fraction(per_tuple.sample(), &recent_d0),
                d0_outlier_fraction(adr.sample(), &recent_d0),
                interval_count as f64 / 10.0,
            );
            println!(
                "{:>8.0} {:>10.2} {:>10.2} {:>10.2} | {:>9.2} {:>9.2} {:>9.2} {:>12.0}",
                row.0, row.1, row.2, row.3, row.4, row.5, row.6, row.7
            );
            emit_json(
                "fig5",
                serde_json::json!({
                    "time_s": row.0,
                    "uniform_mean": row.1,
                    "per_tuple_mean": row.2,
                    "adr_mean": row.3,
                    "d0_outlier_fraction_uniform": row.4,
                    "d0_outlier_fraction_per_tuple": row.5,
                    "d0_outlier_fraction_adr": row.6,
                    "arrival_rate": row.7,
                }),
            );
            interval_start = reading.time_seconds;
            recent_d0.clear();
            interval_count = 0;
        }
    }

    println!(
        "\nExpected shape (paper): all three samplers flag D0 during 50-100 s; after the global\n\
         shift at 150 s only the adaptive samplers track the new mean (the uniform reservoir\n\
         lags); during the 320 s arrival-rate spike the per-tuple reservoir absorbs the noisy\n\
         burst (its mean jumps toward 85) and would falsely suspect D0, while the ADR's mean\n\
         rises only slightly."
    );
}
