//! Figure 6: update throughput of the AMC versus SpaceSaving (list and hash
//! variants) as a function of the sketch's stable size.
//!
//! Streams are Zipf-skewed attribute streams shaped like the paper's TC and
//! FC queries (moderate and very high attribute cardinality respectively).

use mb_bench::{arg_usize, emit_json, human_count, throughput, timed};
use mb_ingest::synthetic::zipf_attribute_stream;
use mb_sketch::amc::AmcSketch;
use mb_sketch::spacesaving::{SpaceSavingHash, SpaceSavingList};
use mb_sketch::HeavyHitterSketch;

fn run_sketch<S: HeavyHitterSketch<u32>>(mut sketch: S, stream: &[u32]) -> f64 {
    let (_, seconds) = timed(|| {
        for &item in stream {
            sketch.observe(item);
        }
    });
    throughput(stream.len(), seconds)
}

fn main() {
    let n = arg_usize("--points", 2_000_000);
    let workloads = [
        ("TC-like", 10_000usize, 1.1f64),
        ("FC-like", 200_000usize, 1.05f64),
    ];
    let stable_sizes = [10usize, 100, 1_000, 10_000, 100_000];
    let maintenance_period = 10_000u64;

    for (name, cardinality, skew) in workloads {
        let stream = zipf_attribute_stream(n, cardinality, skew, 3);
        println!(
            "\nFigure 6 ({name}): updates/s vs stable size ({n} points, cardinality {cardinality})"
        );
        println!(
            "{:>12} {:>14} {:>14} {:>14}",
            "stable size", "AMC", "SS-list", "SS-hash"
        );
        for &size in &stable_sizes {
            let amc = run_sketch(AmcSketch::new(size, maintenance_period), &stream);
            let ssl = run_sketch(SpaceSavingList::new(size), &stream);
            let ssh = run_sketch(SpaceSavingHash::new(size), &stream);
            println!(
                "{:>12} {:>14} {:>14} {:>14}",
                size,
                human_count(amc),
                human_count(ssl),
                human_count(ssh)
            );
            emit_json(
                "fig6",
                serde_json::json!({
                    "workload": name,
                    "stable_size": size,
                    "amc_updates_per_s": amc,
                    "spacesaving_list_updates_per_s": ssl,
                    "spacesaving_hash_updates_per_s": ssh,
                }),
            );
        }
    }
    println!(
        "\nExpected shape (paper): AMC sustains roughly constant update throughput across sketch\n\
         sizes (hash insert + amortized maintenance) while both SpaceSaving variants slow down\n\
         as the sketch grows, by up to several orders of magnitude at large sizes."
    );
}
