//! Figure 7 (Appendix D): CDF of outlier scores across the dataset queries.
//!
//! Runs the simple query of every simulated dataset with score retention and
//! prints selected CDF points, showing the long upper tail the paper
//! describes (the 99th-percentile scores are extreme relative to the bulk).

use macrobase_core::query::{Executor, MdpQuery};
use mb_bench::{arg_usize, emit_json, records_to_points};
use mb_ingest::datasets::{generate_dataset, simple_query_view, DatasetId, DatasetScale};

fn main() {
    let divisor = arg_usize("--scale-divisor", 200);
    println!("Figure 7: outlier-score CDF per dataset (scale divisor {divisor})");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "dataset", "p50", "p90", "p99", "p99.9", "max"
    );
    for id in DatasetId::all() {
        let dataset = generate_dataset(id, DatasetScale { divisor }, 7);
        let points = records_to_points(&simple_query_view(&dataset));
        let mut query = MdpQuery::builder()
            .retain_scores()
            .skip_explanation()
            .build()
            .expect("query construction failed");
        let report = match query.execute(&Executor::OneShot, &points) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: failed: {e}", id.name());
                continue;
            }
        };
        let mut scores = report.scores.clone();
        scores.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| scores[((scores.len() - 1) as f64 * p) as usize];
        let row = (q(0.5), q(0.9), q(0.99), q(0.999), *scores.last().unwrap());
        println!(
            "{:>10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.2}",
            id.name(),
            row.0,
            row.1,
            row.2,
            row.3,
            row.4
        );
        emit_json(
            "fig7",
            serde_json::json!({
                "dataset": id.name(),
                "p50": row.0, "p90": row.1, "p99": row.2, "p999": row.3, "max": row.4,
            }),
        );
    }
    println!(
        "\nExpected shape (paper): a long tail — scores at and beyond the 99th percentile are\n\
         one to two orders of magnitude larger than the median score."
    );
}
