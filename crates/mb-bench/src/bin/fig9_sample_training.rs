//! Figure 9 (Appendix D): training time and classification accuracy when the
//! robust estimators are trained on samples of the input.
//!
//! Mirrors the paper's CMT-style queries: MS (univariate, MAD) and MC
//! (multivariate, MCD). Accuracy is agreement with the labels produced by a
//! model trained on the full dataset.

use mb_bench::{arg_usize, emit_json, timed};
use mb_classify::batch::{BatchClassifier, BatchClassifierConfig};
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::rand_ext::{normal, SplitMix64};
use mb_stats::Estimator;

fn labels_for<E: Estimator + Clone>(
    estimator: &E,
    metrics: &[Vec<f64>],
    sample_size: Option<usize>,
) -> (Vec<bool>, f64) {
    let mut classifier = BatchClassifier::new(
        estimator.clone(),
        BatchClassifierConfig {
            target_percentile: 0.99,
            training_sample_size: sample_size,
        },
    );
    let (result, seconds) = timed(|| classifier.classify_batch(metrics).expect("classify failed"));
    (
        result.iter().map(|c| c.label.is_outlier()).collect(),
        seconds,
    )
}

fn agreement(a: &[bool], b: &[bool]) -> f64 {
    let same = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

fn main() {
    let n = arg_usize("--points", 200_000);
    let mut rng = SplitMix64::new(3);
    let univariate: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            if i % 100 == 0 {
                vec![normal(&mut rng, 70.0, 10.0)]
            } else {
                vec![normal(&mut rng, 10.0, 10.0)]
            }
        })
        .collect();
    let multivariate: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            if i % 100 == 0 {
                (0..5).map(|_| normal(&mut rng, 70.0, 10.0)).collect()
            } else {
                (0..5).map(|_| normal(&mut rng, 10.0, 10.0)).collect()
            }
        })
        .collect();

    let (mad_full, _) = labels_for(&MadEstimator::new(), &univariate, None);
    let (mcd_full, _) = labels_for(&McdEstimator::with_defaults(), &multivariate, None);

    println!("Figure 9: accuracy and training+scoring time vs sample size ({n} points)");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "sample", "MS acc", "MS time(s)", "MC acc", "MC time(s)"
    );
    for &sample in &[100usize, 1_000, 10_000, 100_000] {
        let (mad_labels, mad_time) = labels_for(&MadEstimator::new(), &univariate, Some(sample));
        let (mcd_labels, mcd_time) =
            labels_for(&McdEstimator::with_defaults(), &multivariate, Some(sample));
        let mad_acc = agreement(&mad_labels, &mad_full);
        let mcd_acc = agreement(&mcd_labels, &mcd_full);
        println!(
            "{sample:>12} {mad_acc:>12.4} {mad_time:>12.3} {mcd_acc:>12.4} {mcd_time:>12.3}"
        );
        emit_json(
            "fig9",
            serde_json::json!({
                "sample_size": sample,
                "ms_accuracy": mad_acc,
                "ms_seconds": mad_time,
                "mc_accuracy": mcd_acc,
                "mc_seconds": mcd_time,
            }),
        );
    }
    println!(
        "\nExpected shape (paper): MAD accuracy is essentially unaffected by sampling (≥99%\n\
         agreement even at small samples) while MCD is slightly more sensitive; training on\n\
         samples buys one to two orders of magnitude in training time."
    );
}
