//! End-to-end gate for the `mb_serve` binary: spawn the real server as a
//! child process, drive it over the JSON-lines protocol on its stdin/stdout,
//! and byte-compare every served report against the standalone run of the
//! same query.
//!
//! Four jobs go in before any answer is read — the README quickstart query
//! twice (same fingerprint, so the second must be a cache hit) plus the
//! first two scenarios of the `mb-scenario` standard corpus — so the server
//! is genuinely concurrent. The emitted rows are fully deterministic
//! (byte-identity is the invariant under test); the closing `serve_stats`
//! row pins the cache counters: 4 submissions, 3 trainings, 1 hit.

use macrobase_core::query::{Executor, MdpQuery};
use macrobase_core::types::{MdpReport, Point};
use macrobase_core::wire::{analysis_to_json, points_to_json, report_to_json};
use mb_bench::emit_json;
use mb_scenario::standard_corpus;
use serde_json::Value;
use std::io::{BufRead, BufReader, Lines, Write};
use std::process::{Child, ChildStdout, Command, Stdio};

/// The README quickstart workload: one misbehaving device in a quiet fleet.
fn quickstart_points() -> Vec<Point> {
    let mut points: Vec<Point> = (0..5_000)
        .map(|i| Point::simple(10.0 + (i % 7) as f64 * 0.2, format!("device_{}", i % 50)))
        .collect();
    for i in 0..50 {
        points[i * 100] = Point::simple(90.0, "device_13");
    }
    points
}

fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value.as_object().and_then(|m| m.get(key))
}

fn get_str<'a>(value: &'a Value, key: &str) -> Option<&'a str> {
    get(value, key).and_then(|v| v.as_str())
}

/// One request line out, one response line back.
fn roundtrip(server: &mut Child, lines: &mut Lines<BufReader<ChildStdout>>, request: &str) -> Value {
    let stdin = server.stdin.as_mut().expect("server stdin is piped");
    writeln!(stdin, "{request}").expect("write request to server");
    stdin.flush().expect("flush request to server");
    let line = lines
        .next()
        .expect("server closed stdout mid-protocol")
        .expect("read response from server");
    let response: Value = serde_json::from_str(&line).expect("server responses are JSON");
    assert_eq!(
        get(&response, "ok"),
        Some(&Value::Bool(true)),
        "server error for {request}: {response}"
    );
    response
}

/// A submitted query plus the standalone report it must reproduce.
struct Expected {
    id: String,
    standalone: MdpReport,
    points: usize,
}

fn main() {
    // The server binary sits next to this harness binary in the target dir.
    let server_path = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("target dir")
        .join("mb_serve");
    let mut server = Command::new(&server_path)
        .args(["--threads", "2", "--workers", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", server_path.display()));
    let mut lines = BufReader::new(server.stdout.take().expect("server stdout is piped")).lines();

    // Standalone ground truth, computed in-process before anything is served.
    let quickstart = quickstart_points();
    let mut expected = vec![Expected {
        id: "quickstart".to_string(),
        standalone: MdpQuery::with_defaults()
            .execute(&Executor::OneShot, &quickstart)
            .unwrap(),
        points: quickstart.len(),
    }];
    let mut submissions = vec![(
        "quickstart".to_string(),
        Value::Null, // default analysis: omit the key entirely
        points_to_json(&quickstart),
    )];
    for scenario in standard_corpus(1).into_iter().take(2) {
        let generated = scenario.generate();
        let standalone = scenario
            .query()
            .expect("scenario query")
            .execute(&Executor::OneShot, &generated.points)
            .unwrap();
        expected.push(Expected {
            id: scenario.name().to_string(),
            standalone,
            points: generated.points.len(),
        });
        submissions.push((
            scenario.name().to_string(),
            analysis_to_json(&scenario.analysis()),
            points_to_json(&generated.points),
        ));
    }
    // The quickstart again under a new id: same fingerprint, must hit.
    expected.push(Expected {
        id: "quickstart_again".to_string(),
        standalone: MdpQuery::with_defaults()
            .execute(&Executor::OneShot, &quickstart)
            .unwrap(),
        points: quickstart.len(),
    });
    submissions.push((
        "quickstart_again".to_string(),
        Value::Null,
        points_to_json(&quickstart),
    ));

    // All four submissions land before the first poll, so the server holds
    // them concurrently.
    for (id, analysis, points) in &submissions {
        let analysis_field = match analysis {
            Value::Null => String::new(),
            other => format!(r#""analysis":{other},"#),
        };
        let request = format!(
            r#"{{"op":"submit","id":"{id}",{analysis_field}"executor":{{"mode":"one_shot"}},"points":{points}}}"#
        );
        let response = roundtrip(&mut server, &mut lines, &request);
        assert_eq!(get_str(&response, "state"), Some("queued"), "{response}");
    }

    println!("{:<20} {:>8} {:>8} {:>7} {:>6}", "query", "points", "flagged", "cache", "match");
    for entry in &expected {
        let response = roundtrip(
            &mut server,
            &mut lines,
            &format!(r#"{{"op":"poll","id":"{}","wait_ms":300000}}"#, entry.id),
        );
        assert_eq!(get_str(&response, "state"), Some("done"), "{response}");
        let served = get(&response, "report").expect("done responses carry the report");
        let standalone = report_to_json(&entry.standalone);
        let matches = served.to_string() == standalone.to_string();
        assert!(matches, "served report for {} diverged from standalone", entry.id);
        let cache = get_str(&response, "model_cache").unwrap_or("none").to_string();
        println!(
            "{:<20} {:>8} {:>8} {:>7} {:>6}",
            entry.id, entry.points, entry.standalone.num_outliers, cache, matches
        );
        emit_json(
            "serve_e2e",
            serde_json::json!({
                "query": entry.id.clone(),
                "points": entry.points,
                "flagged": entry.standalone.num_outliers,
                "model_cache": cache,
                "report_bytes_match": matches,
            }),
        );
    }

    // The stats row pins the shared-cache arithmetic: two distinct scenario
    // fingerprints plus the quickstart trained once each, the repeated
    // quickstart hit. uptime is volatile and presence-checked only.
    let stats = roundtrip(&mut server, &mut lines, r#"{"op":"stats"}"#);
    let counters = get(&stats, "counters").expect("stats carry counters");
    let counter = |name: &str| get(counters, name).and_then(|v| v.as_f64()).unwrap_or(0.0);
    emit_json(
        "serve_stats",
        serde_json::json!({
            "jobs_submitted": counter("jobs_submitted"),
            "jobs_completed": counter("jobs_completed"),
            "model_trainings": counter("model_trainings"),
            "cache_misses": counter("cache_misses"),
            "cache_hits": counter("cache_hits"),
            "epochs_published": counter("epochs_published"),
            "uptime_ns": get(&stats, "uptime_ns").and_then(|v| v.as_f64()).unwrap_or(0.0),
        }),
    );

    // Closing stdin is the shutdown signal; the server exits cleanly on EOF.
    drop(server.stdin.take());
    let status = server.wait().expect("server exit status");
    assert!(status.success(), "server exited with {status}");
}
