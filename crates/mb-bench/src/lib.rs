//! Shared helpers for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/` (see DESIGN.md's per-experiment index); each binary
//! prints a human-readable table to stdout plus one JSON line per result row
//! (prefixed with `JSON:`) so EXPERIMENTS.md can be regenerated and results
//! diffed across runs. Criterion micro-benchmarks for the performance-
//! critical data structures live in `benches/`.

use macrobase_core::types::Point;
use mb_ingest::Record;
use std::time::Instant;

/// Convert ingested records into pipeline points.
pub fn records_to_points(records: &[Record]) -> Vec<Point> {
    records
        .iter()
        .map(|r| Point::new(r.metrics.clone(), r.attributes.clone()))
        .collect()
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Throughput in points per second.
pub fn throughput(points: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        points as f64 / seconds
    }
}

/// Emit one machine-readable result row.
pub fn emit_json(experiment: &str, row: serde_json::Value) {
    let mut object = serde_json::json!({ "experiment": experiment });
    if let (Some(target), Some(extra)) = (object.as_object_mut(), row.as_object()) {
        for (k, v) in extra {
            target.insert(k.clone(), v.clone());
        }
    }
    println!("JSON: {object}");
}

/// Read a `--scale N` style positive-integer argument (`default` if absent or
/// malformed). Harness binaries use this to let CI run quickly while allowing
/// larger, closer-to-paper-scale runs when desired.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Whether a bare boolean flag (e.g. `--trace`) is present on the command
/// line.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Apply a `--threads N` argument (if present) to the global work-stealing
/// pool, before anything has touched it; returns the pool's actual size.
/// Call this at the top of `main` in harness binaries — once the pool
/// exists its size is fixed for the life of the process.
pub fn configure_threads_from_args() -> usize {
    let requested = arg_usize("--threads", 0);
    if requested > 0 {
        // Configuration is one-shot: if someone already fixed the size or
        // built the pool, the flag cannot take effect — say so instead of
        // silently running with an unexpected thread count.
        if let Err(e) = mb_pool::configure_global_threads(requested) {
            eprintln!("warning: --threads {requested} ignored: {e}");
        }
    }
    mb_pool::global().num_threads()
}

/// Format a floating point count compactly (e.g. `1.39M`, `599K`).
pub fn human_count(value: f64) -> String {
    if value >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.1}K", value / 1e3)
    } else {
        format!("{value:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_human_count() {
        assert_eq!(throughput(1000, 0.5), 2000.0);
        assert_eq!(throughput(1000, 0.0), 0.0);
        assert_eq!(human_count(2_500_000.0), "2.50M");
        assert_eq!(human_count(1_500.0), "1.5K");
        assert_eq!(human_count(42.0), "42");
    }

    #[test]
    fn records_convert_to_points() {
        let records = vec![Record::new(vec![1.0], vec!["a".to_string()])];
        let points = records_to_points(&records);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].metrics, vec![1.0]);
    }

    #[test]
    fn timed_returns_result() {
        let (value, seconds) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(seconds >= 0.0);
    }
}
