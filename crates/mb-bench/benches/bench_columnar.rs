//! Criterion micro-benchmarks for the columnar hot path: the attribute
//! encode pass (serial vs sharded-parallel into an [`ItemBatch`]) and
//! FP-growth mining on the arena tree (unbounded vs risk-ratio-bounded).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mb_explain::encoder::{encode_batch_parallel, AttributeEncoder};
use mb_explain::risk_ratio::risk_ratio_from_totals;
use mb_fpgrowth::fptree::FpTree;
use mb_fpgrowth::Item;
use mb_stats::rand_ext::{SplitMix64, Zipf};

/// Attribute rows shaped like the sensor workloads: a high-cardinality id
/// column, a mid-cardinality version column, and a low-cardinality model
/// column.
fn attribute_rows(n: usize) -> Vec<Vec<String>> {
    let mut rng = SplitMix64::new(11);
    let zipf = Zipf::new(5_000, 1.1);
    (0..n)
        .map(|_| {
            vec![
                format!("device-{}", zipf.sample(&mut rng)),
                format!("v{}.{}", zipf.sample(&mut rng) % 4, zipf.sample(&mut rng) % 30),
                format!("model-{}", zipf.sample(&mut rng) % 12),
            ]
        })
        .collect()
}

fn transactions(n: usize) -> Vec<Vec<Item>> {
    let mut rng = SplitMix64::new(7);
    let zipf = Zipf::new(2_000, 1.1);
    (0..n)
        .map(|i| {
            if i % 10 < 3 {
                vec![1, 2, 4_000 + zipf.sample(&mut rng) as Item]
            } else {
                vec![
                    10 + zipf.sample(&mut rng) as Item % 50,
                    2_000 + zipf.sample(&mut rng) as Item,
                    4_000 + zipf.sample(&mut rng) as Item,
                ]
            }
        })
        .collect()
}

fn encode_pass(c: &mut Criterion) {
    let rows = attribute_rows(200_000);
    let mut group = c.benchmark_group("encode_pass");
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("serial_encode_point_into", |b| {
        b.iter(|| {
            let mut encoder = AttributeEncoder::new();
            let mut batch = mb_explain::ItemBatch::with_capacity(rows.len(), 3);
            let mut scratch = Vec::new();
            for row in &rows {
                encoder.encode_point_into(row, &mut scratch);
                batch.push_row(&scratch);
            }
            batch.num_items()
        })
    });
    group.bench_function("sharded_encode_batch_parallel", |b| {
        b.iter(|| {
            let mut encoder = AttributeEncoder::new();
            encode_batch_parallel(&mut encoder, mb_pool::global(), &rows, 0).num_items()
        })
    });
    group.finish();
}

fn fpgrowth_mining(c: &mut Criterion) {
    let txns = transactions(100_000);
    let tree = FpTree::from_transactions(&txns, 100.0);
    let total_outliers = txns.len() as f64;
    let total_inliers = 10.0 * total_outliers;
    let mut group = c.benchmark_group("fpgrowth_mining");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txns.len() as u64));
    group.bench_function("build_arena_tree", |b| {
        b.iter(|| FpTree::from_transactions(&txns, 100.0).node_count())
    });
    group.bench_function("mine_unbounded", |b| {
        b.iter(|| tree.mine(100.0, 3).len())
    });
    group.bench_function("mine_risk_ratio_bounded", |b| {
        b.iter(|| {
            tree.mine_with_bound(100.0, 3, |support| {
                risk_ratio_from_totals(support, 0.0, total_outliers, total_inliers) >= 3.0
            })
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, encode_pass, fpgrowth_mining);
criterion_main!(benches);
