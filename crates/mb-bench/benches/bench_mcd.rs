//! Criterion micro-benchmarks for the robust estimators: FastMCD training
//! versus metric dimensionality (Figure 10) and MAD training versus sample
//! size (Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mb_stats::mad::MadEstimator;
use mb_stats::mcd::McdEstimator;
use mb_stats::rand_ext::{normal, SplitMix64};
use mb_stats::Estimator;

fn mcd_train_by_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcd_train_by_dimension");
    group.sample_size(10);
    for &dim in &[2usize, 8, 32] {
        let mut rng = SplitMix64::new(dim as u64);
        let sample: Vec<Vec<f64>> = (0..2_000)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &sample, |b, sample| {
            b.iter(|| {
                let mut est = McdEstimator::with_defaults();
                est.train(sample).expect("train failed");
                est.score(&sample[0]).unwrap()
            })
        });
    }
    group.finish();
}

fn mad_train_by_sample_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("mad_train_by_sample_size");
    group.sample_size(10);
    let mut rng = SplitMix64::new(9);
    let full: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 10.0, 10.0)).collect();
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut est = MadEstimator::new();
                est.train_univariate(&full[..size]).expect("train failed");
                est.score_value(42.0).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, mcd_train_by_dimension, mad_train_by_sample_size);
criterion_main!(benches);
