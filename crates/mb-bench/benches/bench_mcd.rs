//! Criterion micro-benchmarks for the robust estimators: FastMCD training
//! versus metric dimensionality (Figure 10), MAD training versus sample
//! size (Figure 9), and the C-step Mahalanobis-distance pass — the FastMCD
//! hot path the ROADMAP's profiling item tracks, and the pass that fans out
//! on the mb-pool work-stealing pool for large samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mb_stats::mad::MadEstimator;
use mb_stats::matrix::{covariance_matrix, Matrix, SpdFactors};
use mb_stats::mcd::{FastMcdConfig, McdEstimator};
use mb_stats::rand_ext::{normal, SplitMix64};
use mb_stats::Estimator;

fn mcd_train_by_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcd_train_by_dimension");
    group.sample_size(10);
    for &dim in &[2usize, 8, 32] {
        let mut rng = SplitMix64::new(dim as u64);
        let sample: Vec<Vec<f64>> = (0..2_000)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &sample, |b, sample| {
            b.iter(|| {
                let mut est = McdEstimator::with_defaults();
                est.train(sample).expect("train failed");
                est.score(&sample[0]).unwrap()
            })
        });
    }
    group.finish();
}

/// One C-step costs a full Mahalanobis-distance pass over the sample plus a
/// sort; the pass dominates and is what `mb_pool::parallel_for` scatters.
/// `squared_mahalanobis_batch` is that exact pass, benchmarked here per row
/// count so pool-size changes (`--threads` on the harness binaries, thread
/// count in CI) have a number to move.
fn mcd_c_step_distance_pass(c: &mut Criterion) {
    let dim = 8;
    let mut rng = SplitMix64::new(17);
    let train: Vec<Vec<f64>> = (0..2_000)
        .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
        .collect();
    let mut est = McdEstimator::with_defaults();
    est.train(&train).expect("train failed");

    let mut group = c.benchmark_group("mcd_c_step_distance_pass");
    group.sample_size(10);
    for &rows in &[10_000usize, 100_000] {
        let sample: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 2.0)).collect())
            .collect();
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &sample, |b, sample| {
            b.iter(|| est.squared_mahalanobis_batch(sample).expect("distance pass failed"))
        });
    }
    group.finish();
}

/// A single-start, single-C-step training run: initial elemental fit plus
/// one select-and-refit — the unit of work `max_iterations` multiplies.
fn mcd_single_c_step_train(c: &mut Criterion) {
    let dim = 8;
    let mut rng = SplitMix64::new(19);
    let sample: Vec<Vec<f64>> = (0..20_000)
        .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
        .collect();
    let mut group = c.benchmark_group("mcd_single_c_step_train");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function("20000x8", |b| {
        b.iter(|| {
            let mut est = McdEstimator::new(FastMcdConfig {
                num_starts: 1,
                max_iterations: 1,
                ..FastMcdConfig::default()
            });
            est.train(&sample).expect("train failed");
            est.location().unwrap()[0]
        })
    });
    group.finish();
}

/// The linear-algebra cost of one C-step, before and after the factor-once
/// refactor. `inverse_plus_logdet` is the migrated-away pattern — two
/// independent [`Matrix`] calls, each running its own LU decomposition
/// (and, before this refactor, `inverse()` re-decomposed per *column*:
/// O(d⁴)). `factor_once` is what `mcd.rs` does now: one [`SpdFactors`]
/// factorization (Cholesky for the SPD covariance) yielding both products.
fn mcd_inverse_vs_factors(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcd_inverse_vs_factors");
    group.sample_size(10);
    for &dim in &[8usize, 16, 32] {
        let mut rng = SplitMix64::new(dim as u64 + 5);
        let rows: Vec<Vec<f64>> = (0..4 * dim)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        let (_, cov) = covariance_matrix(&rows).expect("covariance failed");
        group.bench_with_input(
            BenchmarkId::new("inverse_plus_logdet", dim),
            &cov,
            |b, cov: &Matrix| {
                b.iter(|| {
                    let inv = cov.inverse().expect("inverse failed");
                    let logdet = cov.log_abs_determinant().expect("logdet failed");
                    inv[(0, 0)] + logdet
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("factor_once", dim),
            &cov,
            |b, cov: &Matrix| {
                b.iter(|| {
                    let factors = SpdFactors::factor(cov).expect("factor failed");
                    let inv = factors.inverse();
                    inv[(0, 0)] + factors.log_abs_determinant()
                })
            },
        );
    }
    group.finish();
}

/// Full FastMCD training with its restarts scattered on an explicit pool:
/// one worker (the serial reference) versus four. Restart tasks nest their
/// C-step distance passes on the same pool; results are bit-identical, so
/// this measures pure scheduling — on a multi-core box the 4-worker run
/// approaches `min(num_starts, workers)`-way speedup, on a 1-core CI box
/// it shows the (small) scatter overhead.
fn mcd_parallel_restarts(c: &mut Criterion) {
    let dim = 8;
    let mut rng = SplitMix64::new(23);
    let sample: Vec<Vec<f64>> = (0..20_000)
        .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
        .collect();
    let config = FastMcdConfig {
        num_starts: 8,
        max_iterations: 2,
        ..FastMcdConfig::default()
    };
    let mut group = c.benchmark_group("mcd_parallel_restarts");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sample.len() as u64));
    for &threads in &[1usize, 4] {
        let pool = mb_pool::Pool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("workers", threads),
            &sample,
            |b, sample| {
                b.iter(|| {
                    let mut est = McdEstimator::new(config.clone());
                    est.train_on_pool(&pool, sample).expect("train failed");
                    est.location().unwrap()[0]
                })
            },
        );
    }
    group.finish();
}

fn mad_train_by_sample_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("mad_train_by_sample_size");
    group.sample_size(10);
    let mut rng = SplitMix64::new(9);
    let full: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 10.0, 10.0)).collect();
    for &size in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut est = MadEstimator::new();
                est.train_univariate(&full[..size]).expect("train failed");
                est.score_value(42.0).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    mcd_train_by_dimension,
    mcd_c_step_distance_pass,
    mcd_single_c_step_train,
    mcd_inverse_vs_factors,
    mcd_parallel_restarts,
    mad_train_by_sample_size
);
criterion_main!(benches);
