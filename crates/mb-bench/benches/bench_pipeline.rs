//! Criterion benchmarks for end-to-end MDP execution: one-shot and streaming
//! throughput on a simple single-metric query (the Table 2 measurement in
//! micro-benchmark form).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use macrobase_core::query::{Executor, MdpQuery, StreamingOptions};
use macrobase_core::types::Point;
use mb_ingest::synthetic::{device_workload, DeviceWorkloadConfig};

fn make_points(n: usize) -> Vec<Point> {
    let workload = device_workload(&DeviceWorkloadConfig {
        num_points: n,
        num_devices: 1_000,
        outlying_device_fraction: 0.01,
        ..DeviceWorkloadConfig::default()
    });
    workload
        .records
        .into_iter()
        .map(|r| Point::new(r.record.metrics, r.record.attributes))
        .collect()
}

fn mdp_end_to_end(c: &mut Criterion) {
    let points = make_points(100_000);
    let mut group = c.benchmark_group("mdp_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points.len() as u64));
    group.bench_function("one_shot_with_explanation", |b| {
        b.iter(|| {
            MdpQuery::with_defaults()
                .execute(&Executor::OneShot, &points)
                .expect("run failed")
                .num_outliers
        })
    });
    group.bench_function("one_shot_without_explanation", |b| {
        b.iter(|| {
            MdpQuery::builder()
                .skip_explanation()
                .build()
                .expect("query construction failed")
                .execute(&Executor::OneShot, &points)
                .expect("run failed")
                .num_outliers
        })
    });
    group.bench_function("streaming_ews", |b| {
        b.iter(|| {
            let mut session = MdpQuery::with_defaults()
                .into_streaming(&StreamingOptions {
                    reservoir_size: 5_000,
                    retrain_period: 20_000,
                    ..StreamingOptions::default()
                })
                .expect("streaming session failed");
            for p in &points {
                session.observe(p).expect("observe failed");
            }
            session.outliers_seen()
        })
    });
    group.finish();
}

criterion_group!(benches, mdp_end_to_end);
criterion_main!(benches);
