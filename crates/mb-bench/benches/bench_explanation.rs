//! Criterion micro-benchmarks for explanation: the cardinality-aware batch
//! strategy versus two-sided FPGrowth and Apriori (Section 6.3 / Table 5).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mb_explain::baselines::apriori_explain;
use mb_explain::batch::{naive_fpgrowth_explain, BatchExplainer};
use mb_explain::ExplanationConfig;
use mb_fpgrowth::Item;
use mb_stats::rand_ext::{SplitMix64, Zipf};

fn workload(n_outliers: usize, n_inliers: usize) -> (Vec<Vec<Item>>, Vec<Vec<Item>>) {
    let mut rng = SplitMix64::new(3);
    let zipf = Zipf::new(2_000, 1.1);
    let outliers = (0..n_outliers)
        .map(|i| {
            if i % 10 < 7 {
                vec![1, 2, 4_000 + zipf.sample(&mut rng) as Item]
            } else {
                vec![
                    10 + zipf.sample(&mut rng) as Item % 50,
                    2_000 + zipf.sample(&mut rng) as Item,
                    4_000 + zipf.sample(&mut rng) as Item,
                ]
            }
        })
        .collect();
    let inliers = (0..n_inliers)
        .map(|_| {
            vec![
                10 + zipf.sample(&mut rng) as Item % 50,
                2_000 + zipf.sample(&mut rng) as Item,
                4_000 + zipf.sample(&mut rng) as Item,
            ]
        })
        .collect();
    (outliers, inliers)
}

fn explanation_strategies(c: &mut Criterion) {
    let (outliers, inliers) = workload(1_000, 100_000);
    let config = ExplanationConfig::new(0.01, 3.0);
    let mut group = c.benchmark_group("explanation_strategies");
    group.sample_size(10);
    group.throughput(Throughput::Elements((outliers.len() + inliers.len()) as u64));
    group.bench_function("macrobase_cardinality_aware", |b| {
        b.iter(|| BatchExplainer::new(config).explain(&outliers, &inliers).len())
    });
    group.bench_function("naive_two_sided_fpgrowth", |b| {
        b.iter(|| naive_fpgrowth_explain(&outliers, &inliers, &config).len())
    });
    group.bench_function("apriori", |b| {
        b.iter(|| apriori_explain(&outliers, &inliers, &config).len())
    });
    group.finish();
}

criterion_group!(benches, explanation_strategies);
criterion_main!(benches);
