//! Criterion micro-benchmarks for the streaming sketches: AMC vs SpaceSaving
//! update cost (the Figure 6 comparison) and ADR vs uniform reservoir
//! insertion cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mb_ingest::synthetic::zipf_attribute_stream;
use mb_sketch::adr::{AdaptableDampedReservoir, DecayPolicy};
use mb_sketch::amc::AmcSketch;
use mb_sketch::reservoir::UniformReservoir;
use mb_sketch::spacesaving::{SpaceSavingHash, SpaceSavingList};
use mb_sketch::{HeavyHitterSketch, StreamSampler};

const STREAM_LEN: usize = 100_000;

fn heavy_hitter_updates(c: &mut Criterion) {
    let stream = zipf_attribute_stream(STREAM_LEN, 50_000, 1.1, 7);
    let mut group = c.benchmark_group("heavy_hitter_updates");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.sample_size(10);
    for &size in &[100usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("amc", size), &size, |b, &size| {
            b.iter(|| {
                let mut sketch = AmcSketch::new(size, 10_000);
                for &item in &stream {
                    sketch.observe(item);
                }
                sketch.tracked_items()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("spacesaving_list", size),
            &size,
            |b, &size| {
                b.iter(|| {
                    let mut sketch = SpaceSavingList::new(size);
                    for &item in &stream {
                        sketch.observe(item);
                    }
                    sketch.tracked_items()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spacesaving_hash", size),
            &size,
            |b, &size| {
                b.iter(|| {
                    let mut sketch = SpaceSavingHash::new(size);
                    for &item in &stream {
                        sketch.observe(item);
                    }
                    sketch.tracked_items()
                })
            },
        );
    }
    group.finish();
}

fn reservoir_insertion(c: &mut Criterion) {
    let values: Vec<f64> = (0..STREAM_LEN).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("reservoir_insertion");
    group.throughput(Throughput::Elements(STREAM_LEN as u64));
    group.sample_size(10);
    // The ADR insert path is a ROADMAP hot-path profiling target: benchmark
    // it at both a rare and an aggressive decay cadence so the amortized
    // per-tuple decay cost (Algorithm 1's headline property) has a number.
    for &decay_period in &[100_000u64, 1_000] {
        group.bench_function(format!("adr_decay_every_{decay_period}"), |b| {
            b.iter(|| {
                let mut adr = AdaptableDampedReservoir::new(
                    10_000,
                    0.01,
                    DecayPolicy::EveryNItems(decay_period),
                    1,
                );
                for &v in &values {
                    adr.observe(v);
                }
                adr.len()
            })
        });
    }
    group.bench_function("uniform", |b| {
        b.iter(|| {
            let mut reservoir = UniformReservoir::new(10_000, 1);
            for &v in &values {
                reservoir.observe(v);
            }
            reservoir.len()
        })
    });
    group.finish();
}

criterion_group!(benches, heavy_hitter_updates, reservoir_insertion);
criterion_main!(benches);
