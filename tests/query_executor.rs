//! The unified query surface, end to end: one `MdpQuery` must answer
//! *identically* — byte for byte — through the one-shot and coordinated
//! backends at any partition count, misconfigurations must surface as typed
//! errors, and every backend must accept any `Ingestor` source.

use macrobase::classify::rule::{Comparison, RuleClassifier};
use macrobase::core::operator::MapTransformer;
use macrobase::prelude::*;

fn workload(n: usize) -> Vec<Point> {
    let mut points: Vec<Point> = (0..n)
        .map(|i| {
            Point::new(
                vec![10.0 + (i % 9) as f64 * 0.2],
                vec![format!("device_{}", i % 60), format!("fw_{}", i % 3)],
            )
        })
        .collect();
    for i in 0..(n / 100) {
        points[i * 100] = Point::new(
            vec![21.0], // modest pre-transform; extreme once squared
            vec!["device_bad".to_string(), "fw_1".to_string()],
        );
    }
    points
}

/// The query under test: a transformer stage (squaring the metric), named
/// attributes, tight explanation thresholds, and retained scores so the
/// comparison covers every field of the report.
fn build_query() -> MdpQuery {
    MdpQuery::builder()
        .transform(Box::new(MapTransformer::new(|mut p: Point| {
            p.metrics[0] = p.metrics[0] * p.metrics[0];
            p
        })))
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device_id".to_string(), "firmware".to_string()])
        .retain_scores()
        .build()
        .unwrap()
}

/// Byte-identical comparison of two reports: every scalar, every retained
/// score, and the full ranked explanation sequence (attributes, items, and
/// exact statistics).
fn assert_reports_identical(a: &MdpReport, b: &MdpReport, context: &str) {
    assert_eq!(a.num_points, b.num_points, "num_points diverged: {context}");
    assert_eq!(
        a.num_outliers, b.num_outliers,
        "num_outliers diverged: {context}"
    );
    assert_eq!(
        a.score_cutoff, b.score_cutoff,
        "score_cutoff diverged: {context}"
    );
    assert_eq!(a.scores, b.scores, "scores diverged: {context}");
    assert_eq!(
        a.explanations, b.explanations,
        "explanation sequence diverged: {context}"
    );
}

#[test]
fn one_query_with_transformer_is_byte_identical_one_shot_vs_coordinated() {
    let points = workload(20_000);
    let reference = build_query()
        .execute(&Executor::OneShot, &points)
        .unwrap();
    // The transformed extreme must actually drive the report.
    assert!(reference.num_outliers > 0);
    assert!(reference
        .explanations
        .iter()
        .any(|e| e.attributes.iter().any(|a| a.contains("device_bad"))));

    for partitions in 1..=8 {
        let coordinated = build_query()
            .execute(&Executor::Coordinated { partitions }, &points)
            .unwrap();
        assert_reports_identical(
            &reference,
            &coordinated,
            &format!("{partitions} partitions"),
        );
    }
}

#[test]
fn hybrid_query_is_byte_identical_one_shot_vs_coordinated() {
    // Add a supervised rule on top of the transformer: the OR of percentile
    // and rule labels must still reconcile exactly across partitions.
    let build = || {
        MdpQuery::builder()
            .transform(Box::new(MapTransformer::new(|mut p: Point| {
                p.metrics[0] = p.metrics[0] * p.metrics[0];
                p
            })))
            .supervised_rule(RuleClassifier::single(0, Comparison::GreaterThan, 430.0))
            .explanation(ExplanationConfig::new(0.005, 3.0))
            .attribute_names(vec!["device_id".to_string(), "firmware".to_string()])
            .retain_scores()
            .build()
            .unwrap()
    };
    let points = workload(12_000);
    let reference = build().execute(&Executor::OneShot, &points).unwrap();
    assert!(reference.num_outliers > 0);
    for partitions in [1, 3, 5, 8] {
        let coordinated = build()
            .execute(&Executor::Coordinated { partitions }, &points)
            .unwrap();
        assert_reports_identical(
            &reference,
            &coordinated,
            &format!("hybrid, {partitions} partitions"),
        );
    }
}

#[test]
fn builder_misconfigurations_return_typed_errors() {
    // No classifier at all.
    assert!(matches!(
        MdpQuery::builder().without_unsupervised().build(),
        Err(PipelineError::MissingClassifier)
    ));
    // Percentile outside [0, 1].
    assert!(matches!(
        MdpQuery::builder().target_percentile(2.0).build(),
        Err(PipelineError::InvalidConfiguration(_))
    ));
    // Batch-only knobs on the streaming backend.
    let points = workload(500);
    let mut retained = MdpQuery::builder().retain_scores().build().unwrap();
    assert!(matches!(
        retained.execute(&Executor::streaming(), &points),
        Err(PipelineError::UnsupportedByBackend {
            feature: "retain_scores",
            backend: "streaming",
        })
    ));
    let mut sampled = MdpQuery::builder().training_sample_size(10).build().unwrap();
    assert!(matches!(
        sampled.execute(&Executor::streaming(), &points),
        Err(PipelineError::UnsupportedByBackend {
            feature: "training_sample_size",
            ..
        })
    ));
    // Transformer chains cannot run point-at-a-time in a streaming session.
    let windowed = MdpQuery::builder()
        .transform(Box::new(MapTransformer::new(|p: Point| p)))
        .build()
        .unwrap();
    assert!(matches!(
        windowed.into_streaming(&StreamingOptions::default()),
        Err(PipelineError::UnsupportedByBackend {
            feature: "transformer chain",
            ..
        })
    ));
}

#[test]
fn every_backend_consumes_the_same_ingestor_fed_query() {
    let points = workload(6_000);
    let executors = [
        Executor::OneShot,
        Executor::Coordinated { partitions: 4 },
        Executor::NaivePartitioned { partitions: 4 },
        Executor::streaming(),
    ];
    for executor in &executors {
        let mut query = MdpQuery::builder()
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .attribute_names(vec!["device_id".to_string(), "firmware".to_string()])
            .build()
            .unwrap();
        let mut source = VecIngestor::new(points.clone(), 777);
        let report = query.execute_ingest(executor, &mut source).unwrap();
        assert_eq!(report.num_points, 6_000, "{} lost points", executor.name());
        assert!(
            report.num_outliers > 0,
            "{} found no outliers",
            executor.name()
        );
    }
}

#[test]
fn naive_partitioned_report_carries_partition_detail_and_no_global_cutoff() {
    let points = workload(8_000);
    let mut query = MdpQuery::builder()
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device_id".to_string(), "firmware".to_string()])
        .retain_scores()
        .build()
        .unwrap();
    let report = query
        .execute(&Executor::NaivePartitioned { partitions: 4 }, &points)
        .unwrap();
    assert!(report.score_cutoff.is_none());
    // Retained scores concatenate across partitions in input order.
    assert_eq!(report.scores.len(), 8_000);
    let partitions = report.partition_reports.as_ref().unwrap();
    assert_eq!(partitions.len(), 4);
    assert!(partitions.iter().all(|p| p.score_cutoff.is_some()));
    assert_eq!(
        partitions.iter().map(|p| p.scores.len()).sum::<usize>(),
        8_000
    );
}
