//! Cross-crate integration tests: full MDP pipelines over synthetic
//! workloads, exercising ingestion, classification, and explanation together.

use macrobase::ingest::synthetic::{device_workload, DeviceWorkloadConfig};
use macrobase::scenario::eval;
use macrobase::prelude::*;

fn workload_points(config: &DeviceWorkloadConfig) -> (Vec<Point>, Vec<String>) {
    let workload = device_workload(config);
    let points = workload
        .records
        .iter()
        .map(|r| Point::new(r.record.metrics.clone(), r.record.attributes.clone()))
        .collect();
    (points, workload.outlying_devices)
}

/// Extract the device ids named by a report's explanations.
fn reported_devices(report: &MdpReport) -> Vec<String> {
    eval::reported_values(&report.explanations)
}

#[test]
fn one_shot_mdp_perfectly_recovers_devices_without_noise() {
    // Section 6.1: "In the noiseless regions of Figure 4, MDP correctly
    // identified 100% of the outlying devices."
    let (points, truth) = workload_points(&DeviceWorkloadConfig {
        num_points: 60_000,
        num_devices: 640,
        outlying_device_fraction: 0.01,
        ..DeviceWorkloadConfig::default()
    });
    let mut query = MdpQuery::builder()
        .explanation(ExplanationConfig::new(0.001, 3.0))
        .attribute_names(vec!["device_id".to_string()])
        .build()
        .unwrap();
    let report = query.execute(&Executor::OneShot, &points).unwrap();
    let f1 = eval::value_f1(&reported_devices(&report), &truth);
    assert!(f1 > 0.95, "F1 was {f1}");
}

#[test]
fn one_shot_mdp_is_resilient_to_moderate_label_noise() {
    // Figure 4: explanation accuracy holds up to ~20-25% label noise, because
    // the risk ratio (threshold 3) prunes inlying devices whose readings were
    // only occasionally mislabeled. Label noise inflates the fraction of
    // anomalous readings, so — as in the paper's setup, where essentially all
    // outlier-distribution readings are classified as outliers — the target
    // percentile is set to match the anomalous mass.
    let label_noise = 0.15;
    let outlying_fraction = 0.01;
    let (points, truth) = workload_points(&DeviceWorkloadConfig {
        num_points: 60_000,
        num_devices: 640,
        outlying_device_fraction: outlying_fraction,
        label_noise,
        ..DeviceWorkloadConfig::default()
    });
    let anomalous_mass =
        label_noise * (1.0 - outlying_fraction) + (1.0 - label_noise) * outlying_fraction;
    let mut query = MdpQuery::builder()
        .target_percentile(1.0 - anomalous_mass)
        .explanation(ExplanationConfig::new(0.001, 3.0))
        .attribute_names(vec!["device_id".to_string()])
        .build()
        .unwrap();
    let report = query.execute(&Executor::OneShot, &points).unwrap();
    let f1 = eval::value_f1(&reported_devices(&report), &truth);
    assert!(f1 > 0.8, "F1 under 15% label noise was {f1}");
}

#[test]
fn streaming_and_one_shot_agree_on_stable_streams() {
    // Table 2 observes that for datasets with few distinct attribute values
    // the one-shot and streaming explanations are highly similar; check the
    // analogous property on the device workload.
    let (points, truth) = workload_points(&DeviceWorkloadConfig {
        num_points: 60_000,
        num_devices: 200,
        outlying_device_fraction: 0.02,
        ..DeviceWorkloadConfig::default()
    });

    let build = || {
        MdpQuery::builder()
            .explanation(ExplanationConfig::new(0.01, 3.0))
            .attribute_names(vec!["device_id".to_string()])
            .build()
            .unwrap()
    };
    let one_shot_report = build().execute(&Executor::OneShot, &points).unwrap();

    // The same query, handed to the streaming backend.
    let streaming_report = build()
        .execute(
            &Executor::Streaming {
                options: StreamingOptions {
                    reservoir_size: 5_000,
                    decay_rate: 0.01,
                    decay_period: 20_000,
                    retrain_period: 10_000,
                    ..StreamingOptions::default()
                },
            },
            &points,
        )
        .unwrap();

    let one_shot_devices: std::collections::HashSet<String> =
        reported_devices(&one_shot_report).into_iter().collect();
    let streaming_devices: std::collections::HashSet<String> =
        reported_devices(&streaming_report).into_iter().collect();
    // Every ground-truth device is found by both modes.
    for device in &truth {
        assert!(one_shot_devices.contains(device), "one-shot missed {device}");
        assert!(
            streaming_devices.contains(device),
            "streaming missed {device}"
        );
    }
}

#[test]
fn partitioned_execution_preserves_recall_but_not_precision() {
    // Figure 11: shared-nothing partitioning keeps recall (the planted
    // devices are found) while overall explanation quality may degrade.
    let (points, truth) = workload_points(&DeviceWorkloadConfig {
        num_points: 40_000,
        num_devices: 200,
        outlying_device_fraction: 0.02,
        ..DeviceWorkloadConfig::default()
    });
    let config = AnalysisConfig {
        explanation: ExplanationConfig::new(0.01, 3.0),
        attribute_names: vec!["device_id".to_string()],
        ..AnalysisConfig::default()
    };
    let single = MdpQuery::new(config.clone())
        .execute(&Executor::NaivePartitioned { partitions: 1 }, &points)
        .unwrap();
    let partitioned = MdpQuery::new(config)
        .execute(&Executor::NaivePartitioned { partitions: 8 }, &points)
        .unwrap();

    let devices_of = |explanations: &[RenderedExplanation]| -> std::collections::HashSet<String> {
        eval::reported_values(explanations).into_iter().collect()
    };
    let single_devices = devices_of(&single.explanations);
    let partitioned_devices = devices_of(&partitioned.explanations);
    for device in &truth {
        assert!(single_devices.contains(device));
        assert!(
            partitioned_devices.contains(device),
            "partitioned run missed {device}"
        );
    }
    // The union of per-partition explanations is at least as large (extra,
    // lower-quality explanations are the accuracy cost Figure 11 reports).
    assert!(partitioned.explanations.len() >= single.explanations.len());
    // The unified report preserves per-partition detail.
    assert_eq!(partitioned.partition_reports.as_ref().unwrap().len(), 8);
}

#[test]
fn csv_ingestion_feeds_the_pipeline() {
    // End-to-end: CSV text -> records -> points -> MDP report.
    let mut csv = String::from("power,device\n");
    for i in 0..5_000 {
        let (power, device) = if i % 100 == 0 {
            (95.0 + (i % 7) as f64, "B264")
        } else {
            (10.0 + (i % 13) as f64 * 0.3, ["B1", "B2", "B3", "B4"][i % 4])
        };
        csv.push_str(&format!("{power},{device}\n"));
    }
    let csv_query = macrobase::ingest::csv::CsvQuery::new(
        vec!["power".to_string()],
        vec!["device".to_string()],
    );
    // The CSV streams straight into the query through the Ingestor trait —
    // no pre-materialized point vector.
    let mut source = CsvIngestor::new(std::io::Cursor::new(csv), &csv_query, 512).unwrap();
    let report = MdpQuery::builder()
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device".to_string()])
        .build()
        .unwrap()
        .execute_ingest(&Executor::OneShot, &mut source)
        .unwrap();
    assert_eq!(source.skipped_rows(), 0);
    assert_eq!(report.num_points, 5_000);
    assert!(report
        .explanations
        .iter()
        .any(|e| e.attributes.contains(&"device=B264".to_string())));
}
