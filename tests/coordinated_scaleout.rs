//! Coordinated partitioned execution must reproduce the one-shot MDP
//! exactly — not just "still finds the planted device" — for every
//! partition count, on the planted-device workload.

use macrobase::ingest::synthetic::{device_workload, DeviceWorkloadConfig};
use macrobase::prelude::*;
use std::collections::BTreeMap;

fn workload_points(num_points: usize, num_devices: usize) -> (Vec<Point>, Vec<String>) {
    let workload = device_workload(&DeviceWorkloadConfig {
        num_points,
        num_devices,
        outlying_device_fraction: 0.01,
        ..DeviceWorkloadConfig::default()
    });
    let points = workload
        .records
        .iter()
        .map(|r| Point::new(r.record.metrics.clone(), r.record.attributes.clone()))
        .collect();
    (points, workload.outlying_devices)
}

fn config() -> AnalysisConfig {
    AnalysisConfig {
        explanation: ExplanationConfig::new(0.01, 3.0),
        attribute_names: vec!["device_id".to_string()],
        ..AnalysisConfig::default()
    }
}

fn run(config: AnalysisConfig, executor: &Executor, points: &[Point]) -> MdpReport {
    MdpQuery::new(config).execute(executor, points).unwrap()
}

/// Map each explanation's (sorted) attribute combination to its statistics.
fn explanation_index(report: &MdpReport) -> BTreeMap<Vec<String>, (f64, f64, f64)> {
    report
        .explanations
        .iter()
        .map(|e| {
            let mut attrs = e.attributes.clone();
            attrs.sort();
            (
                attrs,
                (
                    e.stats.outlier_count,
                    e.stats.inlier_count,
                    e.stats.risk_ratio,
                ),
            )
        })
        .collect()
}

#[test]
fn coordinated_reproduces_one_shot_exactly_for_one_through_eight_partitions() {
    let (points, truth) = workload_points(40_000, 200);
    let one_shot = run(config(), &Executor::OneShot, &points);
    assert!(one_shot.num_outliers > 0);
    let reference = explanation_index(&one_shot);
    // The reference itself covers the ground truth, so exact reproduction
    // implies the coordinated mode does too.
    for device in &truth {
        assert!(
            reference
                .keys()
                .any(|attrs| attrs.iter().any(|a| a.ends_with(device.as_str()))),
            "one-shot reference missing planted device {device}"
        );
    }

    for num_partitions in 1..=8 {
        let coordinated = run(config(), &Executor::Coordinated { partitions: num_partitions }, &points);
        assert_eq!(
            coordinated.num_outliers, one_shot.num_outliers,
            "outlier count diverged at {num_partitions} partitions"
        );
        assert_eq!(coordinated.score_cutoff, one_shot.score_cutoff);
        assert_eq!(coordinated.num_points, one_shot.num_points);

        let merged = explanation_index(&coordinated);
        assert_eq!(
            merged.keys().collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>(),
            "explanation set diverged at {num_partitions} partitions"
        );
        for (attrs, (outlier_count, inlier_count, risk_ratio)) in &merged {
            let (ref_outlier, ref_inlier, ref_ratio) = reference[attrs];
            assert!(
                (outlier_count - ref_outlier).abs() < 1e-9,
                "outlier count for {attrs:?} diverged at {num_partitions} partitions"
            );
            assert!(
                (inlier_count - ref_inlier).abs() < 1e-9,
                "inlier count for {attrs:?} diverged at {num_partitions} partitions"
            );
            let same_ratio = (risk_ratio - ref_ratio).abs() < 1e-9
                || (risk_ratio.is_infinite() && ref_ratio.is_infinite());
            assert!(
                same_ratio,
                "risk ratio for {attrs:?} diverged at {num_partitions} partitions"
            );
        }
    }
}

#[test]
fn coordinated_multivariate_mcd_reproduces_one_shot_on_the_pool() {
    // Two metrics forces the FastMCD estimator, whose C-step distance pass
    // fans out on the shared pool *inside* a partitioned run — the nested-
    // parallelism shape the old per-call scoped-thread scatter could not
    // express. The sample is large enough (> the pool's distance grain)
    // that the pass genuinely scatters, and the guarantee must be unchanged:
    // the coordinated report equals one-shot exactly at every partition
    // count.
    let mut points: Vec<Point> = (0..12_000)
        .map(|i| {
            Point::new(
                vec![10.0 + (i % 7) as f64 * 0.1, 20.0 + (i % 5) as f64 * 0.1],
                vec![format!("device_{}", i % 40), format!("fw_{}", i % 3)],
            )
        })
        .collect();
    for i in 0..120 {
        points[i * 100] = Point::new(
            vec![200.0, 300.0],
            vec!["device_bad".to_string(), "fw_1".to_string()],
        );
    }
    let config = AnalysisConfig {
        explanation: ExplanationConfig::new(0.01, 3.0),
        attribute_names: vec!["device_id".to_string(), "firmware".to_string()],
        ..AnalysisConfig::default()
    };

    let one_shot = run(config.clone(), &Executor::OneShot, &points);
    assert!(one_shot.num_outliers > 0);
    let reference = explanation_index(&one_shot);
    assert!(reference
        .keys()
        .any(|attrs| attrs.iter().any(|a| a.contains("device_bad"))));

    for num_partitions in 1..=8 {
        let coordinated = run(config.clone(), &Executor::Coordinated { partitions: num_partitions }, &points);
        assert_eq!(coordinated.num_outliers, one_shot.num_outliers);
        assert_eq!(coordinated.score_cutoff, one_shot.score_cutoff);
        let merged = explanation_index(&coordinated);
        assert_eq!(
            merged.keys().collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>(),
            "multivariate explanation set diverged at {num_partitions} partitions"
        );
        for (attrs, stats) in &merged {
            let (ref_outlier, ref_inlier, ref_ratio) = reference[attrs];
            assert!((stats.0 - ref_outlier).abs() < 1e-9);
            assert!((stats.1 - ref_inlier).abs() < 1e-9);
            assert!(
                (stats.2 - ref_ratio).abs() < 1e-9
                    || (stats.2.is_infinite() && ref_ratio.is_infinite())
            );
        }
    }
}

#[test]
fn naive_partitioning_diverges_where_coordinated_does_not() {
    // The motivating contrast: at 8 partitions the naïve mode's explanation
    // set differs from one-shot on this workload (per-partition thresholds
    // and support pruning), while the coordinated set is identical. Guards
    // against the coordinated path silently degrading into the naïve one.
    let (points, _) = workload_points(40_000, 200);
    let shared = config();
    let one_shot = run(shared.clone(), &Executor::OneShot, &points);
    let reference: Vec<Vec<String>> = explanation_index(&one_shot).into_keys().collect();

    let coordinated = run(shared.clone(), &Executor::Coordinated { partitions: 8 }, &points);
    let coordinated_set: Vec<Vec<String>> =
        explanation_index(&coordinated).into_keys().collect();
    assert_eq!(coordinated_set, reference);

    let naive = run(shared, &Executor::NaivePartitioned { partitions: 8 }, &points);
    let mut naive_set: Vec<Vec<String>> = naive
        .explanations
        .iter()
        .map(|e| {
            let mut attrs = e.attributes.clone();
            attrs.sort();
            attrs
        })
        .collect();
    naive_set.sort();
    naive_set.dedup();
    assert_ne!(
        naive_set, reference,
        "expected the naïve union to diverge from one-shot on this workload"
    );
}
