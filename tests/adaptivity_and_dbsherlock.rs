//! Integration tests for the adaptivity scenario (Figure 5) and the
//! DBSherlock anomaly-localization scenario (Table 4).

use macrobase::ingest::dbsherlock::{
    generate_cluster, qe_metric_indices, qs_metric_indices, AnomalyType, DbsherlockConfig,
};
use macrobase::ingest::synthetic::adaptivity_stream;
use macrobase::prelude::*;

#[test]
fn streaming_mdp_adapts_to_the_figure5_script() {
    // Replay the scripted 400-second stream of Figure 5 through the streaming
    // MDP. Key checks: D0 is explained during its first anomaly (50-100 s),
    // stops being the dominant explanation after the whole population shifts
    // (150-225 s), and the arrival-rate spike at 320 s does not produce a
    // false D0 explanation at the end of the run.
    let stream = adaptivity_stream(200, 11);
    let mut mdp = MdpQuery::builder()
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device".to_string()])
        .build()
        .unwrap()
        .into_streaming(&StreamingOptions {
            reservoir_size: 2_000,
            decay_rate: 0.3,
            decay_period: 10_000,
            retrain_period: 4_000,
            ..StreamingOptions::default()
        })
        .unwrap();

    // Risk ratio MDP currently assigns to the D0 explanation (0 when absent).
    let d0_risk_ratio = |report: &MdpReport| {
        report
            .explanations
            .iter()
            .find(|e| e.attributes.contains(&"device=D0".to_string()))
            .map(|e| e.stats.risk_ratio)
            .unwrap_or(0.0)
    };

    let mut report_at_100s = None;
    let mut report_at_200s = None;
    for reading in &stream {
        mdp.observe(&Point::simple(reading.value, reading.device.clone()))
            .unwrap();
        if reading.time_seconds >= 99.0 && report_at_100s.is_none() {
            report_at_100s = Some(mdp.report());
        }
        if reading.time_seconds >= 200.0 && report_at_200s.is_none() {
            report_at_200s = Some(mdp.report());
        }
    }
    let final_report = mdp.report();

    // Figure 5a: during D0's first anomalous period its risk ratio is large
    // (the paper plots it clipped at "> 10").
    let rr_at_100s = d0_risk_ratio(report_at_100s.as_ref().unwrap());
    assert!(
        rr_at_100s > 10.0,
        "D0 should be strongly explained during its first anomalous period (rr = {rr_at_100s})"
    );
    // After the global shift, D0's return to normal, exponential decay, and
    // the arrival-rate spike, D0's risk ratio must have collapsed back toward
    // the uninteresting regime (well below its anomalous-period value).
    let rr_final = d0_risk_ratio(&final_report);
    assert!(
        rr_final < rr_at_100s / 5.0,
        "D0's risk ratio should decay after its anomaly ends: {rr_at_100s} -> {rr_final}"
    );
    assert!(
        rr_final < 10.0,
        "D0 should no longer be a strong explanation at the end: rr = {rr_final}"
    );
    let _ = report_at_200s;
}

fn top1_host(records: &[macrobase::ingest::Record], metric_indices: &[usize]) -> Option<String> {
    let points: Vec<Point> = records
        .iter()
        .map(|r| {
            Point::new(
                metric_indices.iter().map(|&i| r.metrics[i]).collect(),
                r.attributes.clone(),
            )
        })
        .collect();
    let mut query = MdpQuery::builder()
        .estimator(EstimatorKind::Mcd)
        .explanation(ExplanationConfig::new(0.02, 3.0))
        .attribute_names(vec!["hostname".to_string()])
        .training_sample_size(1_000)
        .build()
        .ok()?;
    let report = query.execute(&Executor::OneShot, &points).ok()?;
    report
        .explanations
        .first()
        .and_then(|e| e.attributes.first())
        .and_then(|a| a.split('=').nth(1))
        .map(|s| s.to_string())
}

#[test]
fn dbsherlock_qe_queries_localize_every_anomaly_type() {
    // Table 4 (QE): with per-anomaly metric selection, MDP achieves perfect
    // top-1 on all but the hardest anomalies; the synthetic clusters here are
    // clean enough that every type should localize.
    let config = DbsherlockConfig {
        rows_per_server: 120,
        ..DbsherlockConfig::default()
    };
    for anomaly in AnomalyType::all() {
        let experiment = generate_cluster(anomaly, &config);
        let top1 = top1_host(&experiment.records, &qe_metric_indices(anomaly));
        assert_eq!(
            top1.as_deref(),
            Some(experiment.anomalous_host.as_str()),
            "QE failed to localize {}",
            anomaly.label()
        );
    }
}

#[test]
fn dbsherlock_qs_query_misses_the_poorly_written_query_anomaly() {
    // Table 4 (QS): the single generic metric set covers A1-A8 but not A9,
    // whose correlated counters are "substantially different".
    let config = DbsherlockConfig {
        rows_per_server: 120,
        ..DbsherlockConfig::default()
    };
    // A representative covered anomaly localizes under QS...
    let covered = generate_cluster(AnomalyType::CpuStress, &config);
    assert_eq!(
        top1_host(&covered.records, &qs_metric_indices()).as_deref(),
        Some(covered.anomalous_host.as_str())
    );
    // ...while A9 does not (its signal lives outside the QS metrics).
    let uncovered = generate_cluster(AnomalyType::PoorlyWrittenQuery, &config);
    let top1 = top1_host(&uncovered.records, &qs_metric_indices());
    assert_ne!(
        top1.as_deref(),
        Some(uncovered.anomalous_host.as_str()),
        "QS should not localize A9 (its metrics are not in the QS set)"
    );
}
