//! Accuracy equivalence across executors, pinned on a labeled workload.
//!
//! The query surface's contract (Section 5 / Appendix D) has an accuracy
//! side: coordinated partitioning must not change the answer at any
//! partition count, naive partitioning may degrade but must keep finding
//! the planted fault, and streaming trades bounded memory for a documented
//! sliver of recall (its first `warmup_points` rows are never labeled).
//! These tests pin those relationships against the level-shift scenario's
//! ground truth, so a regression in any engine shows up as a concrete
//! precision/recall delta rather than a baseline diff.

use macrobase::prelude::*;
use macrobase::scenario::{eval, LevelShiftScenario, Scenario};

fn scenario() -> LevelShiftScenario {
    // The default configuration — the same instance the `quality_matrix`
    // CI gate runs, so a threshold trip here and a baseline diff there
    // point at the same regression.
    LevelShiftScenario::default()
}

#[test]
fn coordinated_matches_one_shot_exactly_at_every_partition_count() {
    let scenario = scenario();
    let generated = scenario.generate();
    let mut query = scenario.query().unwrap();
    let reference = query.execute(&Executor::OneShot, &generated.points).unwrap();
    let reference_metrics =
        eval::point_metrics(&reference.outlier_rows, &generated.truth.outlier_rows);

    for partitions in 1..=8 {
        let mut query = scenario.query().unwrap();
        let report = query
            .execute(&Executor::Coordinated { partitions }, &generated.points)
            .unwrap();
        // Not merely equal metrics: the coordinated report IS the one-shot
        // report, outlier rows and rendered explanations included.
        assert_eq!(
            report, reference,
            "coordinated({partitions}) diverged from one-shot"
        );
        let metrics = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
        assert_eq!(metrics, reference_metrics);
    }
}

#[test]
fn one_shot_recovers_the_planted_fault() {
    let scenario = scenario();
    let generated = scenario.generate();
    let mut query = scenario.query().unwrap();
    let report = query.execute(&Executor::OneShot, &generated.points).unwrap();
    let metrics = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
    assert!(metrics.f1() > 0.99, "one-shot F1 was {}", metrics.f1());
    assert_eq!(
        eval::explanation_jaccard(&report.explanations, &generated.truth.guilty_attributes),
        1.0,
        "explanations must indict exactly the guilty device"
    );
}

#[test]
fn naive_partitioning_degrades_but_keeps_recall() {
    // Appendix D: per-partition models and thresholds lose a little
    // precision/recall, but the planted fault stays found. The planted mass
    // is uniform over the stream, so every partition sees ~2% anomalies.
    let scenario = scenario();
    let generated = scenario.generate();
    for partitions in [2usize, 4, 8] {
        let mut query = scenario.query().unwrap();
        let report = query
            .execute(&Executor::NaivePartitioned { partitions }, &generated.points)
            .unwrap();
        let metrics = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
        assert!(
            metrics.recall() > 0.85,
            "naive({partitions}) recall was {}",
            metrics.recall()
        );
        assert!(
            metrics.f1() > 0.85,
            "naive({partitions}) F1 was {}",
            metrics.f1()
        );
        // Small partitions can surface extra low-quality explanations (a
        // single misclassified reading clears the support threshold in a
        // tiny per-partition outlier set) — that union noise is exactly the
        // degradation Figure 11 charts. What must hold is containment: the
        // guilty combination is still reported.
        let reported = eval::combination_set(&report.explanations);
        for combo in &generated.truth.guilty_attributes {
            assert!(
                reported.contains(combo),
                "naive({partitions}) lost the guilty combination {combo:?}"
            );
        }
    }
}

#[test]
fn streaming_stays_within_documented_tolerance_of_one_shot() {
    let scenario = scenario();
    let generated = scenario.generate();
    let mut query = scenario.query().unwrap();
    let report = query
        .execute(
            &Executor::Streaming {
                options: StreamingOptions {
                    reservoir_size: 2_000,
                    decay_rate: 0.01,
                    decay_period: 10_000,
                    retrain_period: 2_000,
                    ..StreamingOptions::default()
                },
            },
            &generated.points,
        )
        .unwrap();
    let metrics = eval::point_metrics(&report.outlier_rows, &generated.truth.outlier_rows);
    // Documented tolerance: the engine never labels its warmup rows (100
    // points), and the decayed model wobbles around the batch threshold, so
    // streaming concedes up to ten points of F1 against one-shot's ~1.0 —
    // but no more.
    assert!(
        metrics.recall() > 0.85,
        "streaming recall was {}",
        metrics.recall()
    );
    assert!(metrics.f1() > 0.9, "streaming F1 was {}", metrics.f1());
    assert_eq!(
        eval::explanation_jaccard(&report.explanations, &generated.truth.guilty_attributes),
        1.0
    );
}
