//! `MdpReport` survives a trip over the JSON wire, end to end.
//!
//! A report produced by a real query — scores retained, outlier rows
//! retained, per-partition detail populated, risk ratios that are routinely
//! infinite — must decode back to an equal report. This is the contract
//! that lets reports cross process boundaries (dashboards, the scale-out
//! story of Appendix D) without a private re-implementation of the format
//! at every consumer.

use macrobase::core::wire;
use macrobase::prelude::*;
use macrobase::scenario::{eval, LevelShiftScenario, Scenario};

fn report(executor: &Executor) -> MdpReport {
    report_with_obs(executor, ObsConfig::disabled())
}

fn report_with_obs(executor: &Executor, obs: ObsConfig) -> MdpReport {
    let scenario = LevelShiftScenario {
        num_points: 2_000,
        ..LevelShiftScenario::default()
    };
    let generated = scenario.generate();
    let mut analysis = scenario.analysis();
    analysis.retain_scores = !matches!(executor, Executor::Streaming { .. });
    analysis.obs = obs;
    MdpQuery::new(analysis)
        .execute(executor, &generated.points)
        .unwrap()
}

#[test]
fn one_shot_report_round_trips() {
    let original = report(&Executor::OneShot);
    assert!(!original.scores.is_empty());
    assert!(!original.outlier_rows.is_empty());
    // The guilty device never appears among inliers here, so the top
    // explanation's risk ratio is infinite — the wire format must carry it.
    assert!(original.explanations.iter().any(|e| e.stats.risk_ratio.is_infinite()));

    let encoded = wire::report_to_string(&original);
    let decoded = wire::report_from_str(&encoded).unwrap();
    assert_eq!(decoded, original);

    // A second encode of the decoded report is byte-identical (the format
    // is canonical: insertion-ordered keys, shortest-roundtrip floats).
    assert_eq!(wire::report_to_string(&decoded), encoded);
}

#[test]
fn naive_partitioned_report_round_trips_with_partition_detail() {
    let original = report(&Executor::NaivePartitioned { partitions: 3 });
    let partitions = original.partition_reports.as_ref().unwrap();
    assert_eq!(partitions.len(), 3);
    assert!(partitions.iter().all(|p| !p.outlier_rows.is_empty()));

    let decoded = wire::report_from_str(&wire::report_to_string(&original)).unwrap();
    assert_eq!(decoded, original);
    // The decoded report is still usable for evaluation, not just display.
    assert_eq!(
        eval::point_metrics(&decoded.outlier_rows, &original.outlier_rows).f1(),
        1.0
    );
}

#[test]
fn streaming_report_round_trips() {
    let original = report(&Executor::streaming());
    let decoded = wire::report_from_str(&wire::report_to_string(&original)).unwrap();
    assert_eq!(decoded, original);
}

#[test]
fn untraced_reports_encode_a_null_trace() {
    let original = report(&Executor::OneShot);
    assert!(original.trace.is_none());
    let encoded = wire::report_to_string(&original);
    assert!(encoded.contains("\"trace\":null"));
    let decoded = wire::report_from_str(&encoded).unwrap();
    assert!(decoded.trace.is_none());
}

#[test]
fn traced_one_shot_report_round_trips_canonically() {
    let original = report_with_obs(&Executor::OneShot, ObsConfig::enabled());
    let trace = original.trace.as_ref().expect("trace populated");
    assert!(!trace.stages.is_empty());
    assert!(!trace.counters.is_empty());

    let encoded = wire::report_to_string(&original);
    let decoded = wire::report_from_str(&encoded).unwrap();
    assert_eq!(decoded, original);
    // Canonical: re-encoding the decoded report is byte-identical.
    assert_eq!(wire::report_to_string(&decoded), encoded);
}

#[test]
fn traced_naive_report_round_trips_nested_partition_traces() {
    let original =
        report_with_obs(&Executor::NaivePartitioned { partitions: 3 }, ObsConfig::enabled());
    assert!(original.trace.is_some());
    let partitions = original.partition_reports.as_ref().unwrap();
    assert!(
        partitions.iter().all(|p| p.trace.is_some()),
        "every partition report carries its own trace"
    );

    let decoded = wire::report_from_str(&wire::report_to_string(&original)).unwrap();
    assert_eq!(decoded, original);
    let decoded_partitions = decoded.partition_reports.unwrap();
    assert!(decoded_partitions.iter().all(|p| p.trace.is_some()));
}

#[test]
fn traced_streaming_report_round_trips_histogram_buckets() {
    let original = report_with_obs(&Executor::streaming(), ObsConfig::enabled());
    let trace = original.trace.as_ref().unwrap();
    let retrains = trace
        .histogram("retrain_ns")
        .expect("streaming records retrain latencies");
    assert!(retrains.count >= 1);
    assert!(!retrains.buckets.is_empty());

    let decoded = wire::report_from_str(&wire::report_to_string(&original)).unwrap();
    assert_eq!(decoded, original);
    assert_eq!(
        decoded.trace.unwrap().histogram("retrain_ns").unwrap().buckets,
        retrains.buckets
    );
}
