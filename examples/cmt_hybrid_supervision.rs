//! Hybrid supervision (Section 6.4, first case study).
//!
//! CMT attaches an externally computed trip-quality score to every trip.
//! The unsupervised MCD classifier watches the usual trip metrics (length,
//! battery drain), while a lightweight supervised rule flags trips whose
//! quality score is very low *regardless* of how those scores are distributed
//! in the population. The pipeline ORs the two classifiers and feeds the
//! union into the standard risk-ratio explainer.
//!
//! ```sh
//! cargo run --release --example cmt_hybrid_supervision
//! ```

use macrobase::classify::rule::{Comparison, RuleClassifier};
use macrobase::prelude::*;
use macrobase::stats::rand_ext::{normal, SplitMix64};

fn main() {
    let mut rng = SplitMix64::new(21);
    let phone_models = ["mA", "mB", "mC", "mD", "mE", "mF"];
    let os_versions = ["ios_14", "ios_15", "android_11", "android_12"];

    // Metrics: [trip_length_min, battery_drain_pct, quality_score]
    // Attributes: [phone_model, os_version]
    let mut points = Vec::with_capacity(120_000);
    for _ in 0..120_000 {
        let model = phone_models[rng.next_below(phone_models.len())];
        let os = os_versions[rng.next_below(os_versions.len())];

        let mut trip_length = normal(&mut rng, 25.0, 8.0).max(1.0);
        let mut battery = normal(&mut rng, 4.0, 1.5).max(0.1);
        let mut quality = (normal(&mut rng, 0.85, 0.08)).clamp(0.0, 1.0);

        // Statistical anomaly: model mE on ios_15 drains far more battery.
        if model == "mE" && os == "ios_15" && rng.next_f64() < 0.3 {
            battery = normal(&mut rng, 25.0, 3.0);
            trip_length = normal(&mut rng, 26.0, 8.0).max(1.0);
        }
        // Rule-only anomaly: android_11 on model mB silently produces garbage
        // trips with terrible quality scores but unremarkable metrics.
        if model == "mB" && os == "android_11" && rng.next_f64() < 0.05 {
            quality = normal(&mut rng, 0.05, 0.03).clamp(0.0, 1.0);
        }

        points.push(Point::new(
            vec![trip_length, battery, quality],
            vec![model.to_string(), os.to_string()],
        ));
    }

    // Hybrid query: unsupervised MCD over all metrics OR a rule flagging
    // quality scores below 0.3 (metric index 2).
    let mut query = MdpQuery::builder()
        .supervised_rule(RuleClassifier::single(2, Comparison::LessThan, 0.3))
        .estimator(EstimatorKind::Mcd)
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["phone_model".to_string(), "os_version".to_string()])
        .training_sample_size(20_000)
        .build()
        .expect("query construction failed");

    let start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let report = query
        .execute(&Executor::OneShot, &points)
        .expect("query run failed");
    let elapsed = start.elapsed();

    println!("{}", render_report(&report, 12));
    println!(
        "hybrid query labeled {} of {} trips as outliers in {:.2?}",
        report.num_outliers, report.num_points, elapsed
    );

    for needle in ["phone_model=mE", "phone_model=mB"] {
        let found = report
            .explanations
            .iter()
            .any(|e| e.attributes.iter().any(|a| a == needle));
        println!(
            "{needle} {}",
            if found {
                "RECOVERED (one via statistics, one via the supervised rule)"
            } else {
                "NOT FOUND"
            }
        );
    }
}
