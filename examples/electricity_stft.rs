//! Time-series pipeline over household electricity data (Section 6.4,
//! second case study).
//!
//! The pipeline i) partitions the stream by device id, ii) windows it into
//! hourly intervals tagged with hour-of-day attributes, iii) applies a
//! Short-Time Fourier Transform to each window and keeps the lowest
//! coefficients as metrics, and iv) feeds the result into an unmodified MDP.
//! The synthetic household mirrors the paper's finding: a refrigerator that
//! behaves abnormally (relative to other devices and other hours) around
//! lunchtime.
//!
//! ```sh
//! cargo run --release --example electricity_stft
//! ```

use macrobase::prelude::*;
use macrobase::stats::rand_ext::{normal, SplitMix64};
use macrobase::transform::fourier::{dft_magnitudes, StftConfig};
use macrobase::transform::truncate::truncate_dimensions;
use macrobase::transform::window::TumblingWindower;

fn main() {
    let mut rng = SplitMix64::new(5);
    let devices = ["fridge", "tv", "heater", "washer", "router"];
    let days = 28u64;
    let samples_per_hour = 60u64; // one reading a minute

    // Generate a month of per-minute readings per device.
    let mut windower = TumblingWindower::new(3600);
    for day in 0..days {
        for hour in 0..24u64 {
            for minute in 0..samples_per_hour {
                let ts = day * 86_400 + hour * 3600 + minute * 60;
                for device in devices {
                    let base = match device {
                        "fridge" => 60.0 + 40.0 * ((minute % 30) as f64 / 30.0), // compressor cycle
                        "tv" => {
                            if (18..23).contains(&hour) {
                                90.0
                            } else {
                                2.0
                            }
                        }
                        "heater" => {
                            if !(8..20).contains(&hour) {
                                800.0
                            } else {
                                50.0
                            }
                        }
                        "washer" => {
                            if hour == 10 && day % 3 == 0 {
                                500.0
                            } else {
                                1.0
                            }
                        }
                        _ => 8.0,
                    };
                    // Anomaly: between 12:00 and 13:00 the fridge oscillates
                    // violently (door left open / failing compressor).
                    let anomaly = device == "fridge" && hour == 12;
                    let value = if anomaly {
                        base + 120.0 * ((minute as f64) * 1.3).sin().abs() + normal(&mut rng, 0.0, 15.0)
                    } else {
                        base + normal(&mut rng, 0.0, 3.0)
                    };
                    windower.observe(device, ts, value.max(0.0));
                }
            }
        }
    }

    // STFT each hourly window and keep the lowest 8 coefficient magnitudes.
    let stft_config = StftConfig {
        window_size: samples_per_hour as usize,
        hop: samples_per_hour as usize,
        num_coefficients: 8,
    };
    let windows = windower.drain();
    let mut metric_rows: Vec<Vec<f64>> = Vec::with_capacity(windows.len());
    let mut attribute_rows: Vec<Vec<String>> = Vec::with_capacity(windows.len());
    for w in &windows {
        if w.values.len() < stft_config.window_size {
            continue;
        }
        let coefficients =
            dft_magnitudes(&w.values[..stft_config.window_size], stft_config.num_coefficients)
                .expect("DFT failed");
        metric_rows.push(coefficients);
        attribute_rows.push(vec![w.key.clone(), format!("hour_{:02}", w.hour_of_day)]);
    }
    // Keep a fixed dimensionality (already 8, but the call also guards short rows).
    let metric_rows = truncate_dimensions(&metric_rows, 8).expect("truncate failed");

    let points: Vec<Point> = metric_rows
        .into_iter()
        .zip(attribute_rows)
        .map(|(metrics, attributes)| Point::new(metrics, attributes))
        .collect();

    let mut query = MdpQuery::builder()
        .estimator(EstimatorKind::Mcd)
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device".to_string(), "hour_of_day".to_string()])
        .build()
        .expect("query construction failed");

    let start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let report = query
        .execute(&Executor::OneShot, &points)
        .expect("MDP failed");
    println!("{}", render_report(&report, 10));
    println!(
        "analyzed {} device-hour windows in {:.2?}",
        report.num_points,
        start.elapsed()
    );

    let found = report.explanations.iter().any(|e| {
        e.attributes.contains(&"device=fridge".to_string())
            && e.attributes.contains(&"hour_of_day=hour_12".to_string())
    });
    println!(
        "fridge lunchtime anomaly {}",
        if found { "RECOVERED" } else { "NOT FOUND" }
    );
}
