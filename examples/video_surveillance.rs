//! Video-surveillance pipeline (Section 6.4, third case study).
//!
//! The paper computes per-frame average optical-flow velocity with OpenCV and
//! lets an unmodified MDP find time intervals with abnormal motion (a fight
//! in the CAVIAR dataset). Here the video is synthetic — a lobby scene where
//! one or two "people" (bright blobs) drift slowly, except for a three-second
//! burst of rapid motion — and the optical flow is a pure-Rust block-matching
//! estimate, but the pipeline shape is identical: frame pair → mean flow
//! magnitude metric → MAD classifier → explanation over time-interval
//! attributes.
//!
//! ```sh
//! cargo run --release --example video_surveillance
//! ```

use macrobase::prelude::*;
use macrobase::stats::rand_ext::SplitMix64;
use macrobase::transform::flow::{flow_series, FlowConfig, Frame};

fn main() {
    let mut rng = SplitMix64::new(99);
    let fps = 10usize;
    let duration_seconds = 120usize;
    let total_frames = fps * duration_seconds;
    let (width, height) = (96usize, 64usize);

    // Two actors wander slowly; between t=60s and t=63s they move violently.
    let mut frames = Vec::with_capacity(total_frames);
    let (mut ax, mut ay) = (10.0f64, 20.0f64);
    let (mut bx, mut by) = (70.0f64, 40.0f64);
    for frame_idx in 0..total_frames {
        let second = frame_idx / fps;
        let fight = (60..63).contains(&second);
        let step = if fight { 6.0 } else { 0.4 };
        ax = (ax + step * (rng.next_f64() - 0.5) * 2.0).clamp(0.0, (width - 8) as f64);
        ay = (ay + step * (rng.next_f64() - 0.5) * 2.0).clamp(0.0, (height - 8) as f64);
        bx = (bx + step * (rng.next_f64() - 0.5) * 2.0).clamp(0.0, (width - 8) as f64);
        by = (by + step * (rng.next_f64() - 0.5) * 2.0).clamp(0.0, (height - 8) as f64);
        let mut frame = Frame::black(width, height).expect("frame");
        frame.draw_square(ax as usize, ay as usize, 8, 1.0);
        frame.draw_square(bx as usize, by as usize, 8, 0.8);
        frames.push(frame);
    }

    // Feature transform: mean optical-flow magnitude per frame pair.
    let transform_start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let flows = flow_series(&frames, &FlowConfig::default()).expect("flow failed");
    let transform_elapsed = transform_start.elapsed();

    // Each transformed frame is tagged with its 5-second time interval.
    let points: Vec<Point> = flows
        .iter()
        .enumerate()
        .map(|(i, &magnitude)| {
            let second = i / fps;
            Point::new(
                vec![magnitude],
                vec![format!("t{:03}-{:03}s", (second / 5) * 5, (second / 5) * 5 + 5)],
            )
        })
        .collect();

    let mut query = MdpQuery::builder()
        .estimator(EstimatorKind::Mad)
        .explanation(ExplanationConfig::new(0.05, 3.0))
        .attribute_names(vec!["interval".to_string()])
        .build()
        .expect("query construction failed");
    let mdp_start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let report = query
        .execute(&Executor::OneShot, &points)
        .expect("MDP failed");
    let mdp_elapsed = mdp_start.elapsed();

    println!("{}", render_report(&report, 5));
    println!(
        "feature transform (optical flow) took {:.2?}, MDP took {:.2?} — as in the paper, \
         the domain transform dominates the runtime",
        transform_elapsed, mdp_elapsed
    );
    let found = report
        .explanations
        .iter()
        .any(|e| e.attributes.iter().any(|a| a.contains("t060-065s")));
    println!(
        "fight interval (60–65 s) {}",
        if found { "RECOVERED" } else { "NOT FOUND" }
    );
}
