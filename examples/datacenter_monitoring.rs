//! Datacenter monitoring: find the misbehaving server in an OLTP cluster
//! (the Table 4 / DBSherlock scenario, run as a streaming query).
//!
//! An 11-server cluster emits 200 correlated performance counters per
//! observation interval; one server suffers I/O stress. The example runs the
//! query twice, the way the paper does:
//!
//! * **QS** — a single generic query over a fixed set of 15 counters chosen
//!   by feature selection, and
//! * **QE** — a per-anomaly query over the counters known to be affected by
//!   I/O stress.
//!
//! Both should rank the stressed host's `hostname` attribute first.
//!
//! ```sh
//! cargo run --release --example datacenter_monitoring
//! ```

use macrobase::ingest::dbsherlock::{
    generate_cluster, qe_metric_indices, qs_metric_indices, AnomalyType, DbsherlockConfig,
};
use macrobase::prelude::*;

fn run_query(
    name: &str,
    records: &[macrobase::ingest::Record],
    metric_indices: &[usize],
    truth: &str,
) {
    let points: Vec<Point> = records
        .iter()
        .map(|r| {
            Point::new(
                metric_indices.iter().map(|&i| r.metrics[i]).collect(),
                r.attributes.clone(),
            )
        })
        .collect();
    let mut query = MdpQuery::builder()
        .estimator(EstimatorKind::Mcd)
        .explanation(ExplanationConfig::new(0.02, 3.0))
        .attribute_names(vec!["hostname".to_string()])
        .training_sample_size(1_000)
        .build()
        .expect("query construction failed");
    let start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let report = query
        .execute(&Executor::OneShot, &points)
        .expect("query failed");
    let top = report
        .top_attributes(1)
        .first()
        .map(|attributes| attributes.join(", "))
        .unwrap_or_default();
    println!(
        "{name}: top explanation [{top}] (truth: hostname={truth}) in {:.2?} — {}",
        start.elapsed(),
        if top.contains(truth) { "CORRECT" } else { "incorrect" }
    );
}

fn main() {
    let config = DbsherlockConfig {
        rows_per_server: 400,
        ..DbsherlockConfig::default()
    };
    let anomaly = AnomalyType::IoStress;
    let experiment = generate_cluster(anomaly, &config);
    println!(
        "cluster of {} servers × {} intervals × {} counters; injected anomaly {} on {}\n",
        config.num_servers,
        config.rows_per_server,
        config.num_counters,
        anomaly.label(),
        experiment.anomalous_host
    );

    run_query(
        "QS (generic 15-counter query)",
        &experiment.records,
        &qs_metric_indices(),
        &experiment.anomalous_host,
    );
    run_query(
        "QE (I/O-stress-specific query)",
        &experiment.records,
        &qe_metric_indices(anomaly),
        &experiment.anomalous_host,
    );
}
