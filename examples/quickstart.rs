//! Quickstart: run MacroBase's default pipeline (MDP) over a synthetic
//! telematics-style stream and print the ranked explanations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The workload mirrors the paper's running example: power-drain readings
//! tagged with a device type and an application version. Devices of type
//! `B264` running application version `2.26.3` experience abnormally high
//! power drain; MacroBase should surface exactly that combination.

use macrobase::prelude::*;
use macrobase::stats::rand_ext::{normal, SplitMix64};

fn main() {
    let mut rng = SplitMix64::new(7);
    let device_types = ["B101", "B150", "B264", "B302", "B404"];
    let app_versions = ["2.25.0", "2.26.3", "2.27.1"];

    // 200K readings; the (B264, 2.26.3) combination drains far more power.
    let mut points = Vec::with_capacity(200_000);
    for _ in 0..200_000 {
        let device = device_types[rng.next_below(device_types.len())];
        let version = app_versions[rng.next_below(app_versions.len())];
        let affected = device == "B264" && version == "2.26.3";
        // ~1.5% of affected readings actually exhibit the problem.
        let power = if affected && rng.next_f64() < 0.20 {
            normal(&mut rng, 95.0, 5.0)
        } else {
            normal(&mut rng, 12.0, 3.0)
        };
        points.push(Point::new(
            vec![power],
            vec![device.to_string(), version.to_string()],
        ));
    }

    let mut query = MdpQuery::builder()
        .explanation(ExplanationConfig::new(0.01, 3.0))
        .attribute_names(vec!["device_type".to_string(), "app_version".to_string()])
        .build()
        .expect("query construction failed");

    let start = std::time::Instant::now(); // mb-lint: allow(no-adhoc-clock) -- demo prints wall-clock throughput
    let report = query
        .execute(&Executor::OneShot, &points)
        .expect("MDP query failed");
    let elapsed = start.elapsed();

    println!("{}", render_report(&report, 10));
    println!(
        "processed {} points in {:.2?} ({:.0} points/s)",
        report.num_points,
        elapsed,
        report.num_points as f64 / elapsed.as_secs_f64()
    );

    let found = report.explanations.iter().any(|e| {
        e.attributes.contains(&"device_type=B264".to_string())
            && e.attributes.contains(&"app_version=2.26.3".to_string())
    });
    println!(
        "planted combination (B264 × 2.26.3) {}",
        if found { "RECOVERED" } else { "NOT FOUND" }
    );
}
