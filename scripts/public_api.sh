#!/usr/bin/env bash
# Public-API inventory check for the redesigned query surface.
#
# Dumps every `pub` item declared in the facade (src/lib.rs), in
# macrobase-core (crates/core/src/*.rs), in mb-scenario
# (crates/mb-scenario/src/*.rs), in mb-obs (crates/mb-obs/src/*.rs), in
# mb-serve (crates/mb-serve/src/*.rs), and in mb-lint
# (crates/mb-lint/src/*.rs) —
# the crates whose API the MdpQuery/Executor redesign, the accuracy
# harness, the telemetry layer, the serving layer, and the static-analysis
# gate own — and diffs the
# inventory against the
# blessed snapshot in scripts/public_api.txt. CI runs this so a PR cannot
# silently add, remove, or rename public surface: an intentional change is
# re-blessed with `scripts/public_api.sh --bless` and shows up in review as
# a snapshot diff.
#
# The dump is a convention-based inventory (item kind + name per source
# file), not a full signature diff: it relies on this workspace's style of
# one `#[cfg(test)] mod tests` at the *bottom* of each file (everything
# after it is ignored) and rustfmt-formatted `pub` items starting on their
# own line.

set -euo pipefail
cd "$(dirname "$0")/.."
SNAPSHOT=scripts/public_api.txt

dump() {
  for f in src/lib.rs crates/core/src/*.rs crates/mb-lint/src/*.rs crates/mb-obs/src/*.rs crates/mb-scenario/src/*.rs crates/mb-serve/src/*.rs; do
    awk -v file="$f" '
      function emit(line) {
        sub(/^[ \t]+/, "", line)
        if (line ~ /^pub use /) {
          sub(/;[ \t]*$/, "", line)
          gsub(/[ \t]+/, " ", line)     # collapse joined multi-line groups
        } else {
          sub(/[({;=<].*$/, "", line)
        }
        sub(/[ \t]+$/, "", line)
        print file ": " line
      }
      /^#\[cfg\(test\)\]/ { exit }        # test module ends the file
      inuse {                              # continuation of a multi-line pub use
        acc = acc " " $0
        if ($0 ~ /;[ \t]*$/) { inuse = 0; emit(acc) }
        next
      }
      /^[ \t]*pub use / && $0 !~ /;[ \t]*$/ {
        # rustfmt wraps long use groups across lines; join until the `;`
        # so every re-exported name lands in the inventory.
        inuse = 1; acc = $0; next
      }
      /^[ \t]*pub (fn|struct|enum|trait|type|mod|use|const) / { emit($0) }
    ' "$f"
  done | LC_ALL=C sort -u
}

case "${1:-}" in
  --bless)
    dump > "$SNAPSHOT"
    echo "blessed $(wc -l < "$SNAPSHOT" | tr -d ' ') public items into $SNAPSHOT"
    ;;
  "")
    if diff -u "$SNAPSHOT" <(dump); then
      echo "public API matches $SNAPSHOT ($(wc -l < "$SNAPSHOT" | tr -d ' ') items)"
    else
      echo
      echo "public API changed. If intentional, re-bless with: scripts/public_api.sh --bless" >&2
      exit 1
    fi
    ;;
  *)
    echo "usage: $0 [--bless]" >&2
    exit 2
    ;;
esac
